"""The pull-based query evaluator.

"The query evaluator sequentially evaluates the query expressions until
it has to block either because a new node is required (e.g., when a
variable is bound to the next node in its for-loop) or a
signOff-statement is encountered.  In consequence, a request is issued
to the buffer manager, and query evaluation remains blocked until the
buffer manager has responded." (paper, Section 3)

In this implementation the blocking pull chain is realised by the
``_next_child`` / ``_ensure_closed`` primitives: whenever the evaluator
needs data that is not yet buffered, it advances the stream projector
one token at a time until the data arrives or its absence is evident
(the enclosing element closed).

Correctness of the role accounting relies on two disciplines, both
explained in DESIGN.md §3:

* before a signOff executes, its context node is pulled to its end tag
  (otherwise later-arriving descendants could receive role instances
  that have already been signed off);
* signOff paths are evaluated in *derivation* mode — one removal per
  match derivation — mirroring exactly the multiplicity with which the
  matcher assigned the roles.
"""

from __future__ import annotations

from repro.core.buffer import Buffer, BufferNode
from repro.core.projector import CompiledStreamProjector, StreamProjector
from repro.xmlio.writer import XmlWriter
from repro.xpath.ast import Axis, Path, Step
from repro.xquery import ast as q


class EvaluationError(RuntimeError):
    """Raised when the evaluator meets an unsupported construct."""


class PullEvaluator:
    """Evaluates one rewritten query over one projected stream."""

    def __init__(
        self,
        query: q.Query,
        projector: StreamProjector | CompiledStreamProjector,
        buffer: Buffer,
        writer: XmlWriter,
        gc_enabled: bool = True,
    ):
        self._query = query
        self._projector = projector
        self._buffer = buffer
        self._writer = writer
        self._gc_enabled = gc_enabled
        self._env: dict[str, BufferNode] = {}
        self._scalars: dict[str, float | int | str] = {}

    def run(self) -> None:
        """Evaluate the query to completion."""
        self._eval(self._query.body)

    # ------------------------------------------------------------------
    # blocking primitives (the buffer-manager protocol)
    # ------------------------------------------------------------------

    def _ensure_closed(self, node: BufferNode) -> None:
        while not node.closed and not node.purged:
            if not self._projector.advance():
                return

    def _next_child(self, node: BufferNode, after_seq: int, predicate):
        while True:
            child = node.next_child_after(after_seq, predicate)
            if child is not None:
                return child
            if node.closed or node.purged:
                return None
            if not self._projector.advance():
                return None

    # ------------------------------------------------------------------
    # expression evaluation
    # ------------------------------------------------------------------

    def _eval(self, expr: q.Expr) -> None:
        if isinstance(expr, q.Sequence):
            for item in expr.items:
                self._eval(item)
        elif isinstance(expr, q.ForExpr):
            for node in self._iterate(expr.source):
                self._env[expr.var] = node
                self._eval(expr.body)
            self._env.pop(expr.var, None)
        elif isinstance(expr, q.LetExpr):
            if isinstance(expr.value, q.Aggregate):
                self._scalars[expr.var] = self._aggregate(expr.value)
            else:
                self._scalars[expr.var] = expr.value.value
            self._eval(expr.body)
            self._scalars.pop(expr.var, None)
        elif isinstance(expr, q.IfExpr):
            if self._condition(expr.condition):
                self._eval(expr.then)
            else:
                self._eval(expr.orelse)
        elif isinstance(expr, q.ElementConstructor):
            self._writer.start_element(expr.tag, self._resolve_attributes(expr))
            self._eval(expr.body)
            self._writer.end_element(expr.tag)
        elif isinstance(expr, q.PathExpr):
            self._output_path(expr)
        elif isinstance(expr, q.AggregateExpr):
            self._writer.text(format_number(self._aggregate(expr.aggregate)))
        elif isinstance(expr, q.SignOff):
            self._signoff(expr)
        elif isinstance(expr, q.TextLiteral):
            self._writer.text(expr.value)
        elif isinstance(expr, q.Empty):
            pass
        else:  # pragma: no cover - exhaustive over the AST
            raise EvaluationError(f"unsupported expression {expr!r}")

    # ------------------------------------------------------------------
    # for-loop iteration
    # ------------------------------------------------------------------

    def _context(self, var: str | None) -> BufferNode:
        if var is None:
            return self._buffer.root
        if var in self._scalars:
            raise EvaluationError(
                f"${var} is a scalar let binding, not a node"
            )
        try:
            return self._env[var]
        except KeyError:
            raise EvaluationError(f"unbound variable ${var}") from None

    def _iterate(self, source: q.PathOperand):
        """Bind-by-bind iteration over a single-step for source."""
        context = self._context(source.var)
        if len(source.path.steps) != 1:
            raise EvaluationError(
                f"for source {source} is not single-step; query was not normalized"
            )
        step = source.path.steps[0]
        if step.axis is Axis.CHILD:
            yield from self._iterate_children(context, step)
        elif step.axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            yield from self._iterate_descendants(context, step)
        elif step.axis is Axis.SELF:
            if self._node_matches(context, step):
                yield context
        else:
            raise EvaluationError(f"cannot iterate over axis {step.axis.value}")

    def _iterate_children(self, context: BufferNode, step: Step):
        predicate = lambda node: self._node_matches(node, step)  # noqa: E731
        last_seq = 0
        matched = 0
        while True:
            child = self._next_child(context, last_seq, predicate)
            if child is None:
                return
            last_seq = child.seq
            matched += 1
            if step.position is None:
                yield child
            elif matched == step.position:
                yield child
                return

    def _iterate_descendants(self, context: BufferNode, step: Step):
        matched = 0
        if (
            step.axis is Axis.DESCENDANT_OR_SELF
            and not context.is_document
            and self._node_matches(context, step)
        ):
            matched += 1
            if step.position is None:
                yield context
            elif matched == step.position:
                yield context
                return
        stack: list[list] = [[context, 0]]
        while stack:
            top = stack[-1]
            child = self._next_child(top[0], top[1], None)
            if child is None:
                stack.pop()
                continue
            top[1] = child.seq
            if self._node_matches(child, step):
                matched += 1
                if step.position is None:
                    yield child
                elif matched == step.position:
                    yield child
                    return
            if child.is_element and not child.purged:
                stack.append([child, 0])

    @staticmethod
    def _node_matches(node: BufferNode, step: Step) -> bool:
        if node.is_text:
            return step.test.matches_text()
        if node.is_document:
            return step.test.kind == "node"
        return step.test.matches_element(node.tag)

    # ------------------------------------------------------------------
    # conditions
    # ------------------------------------------------------------------

    def _condition(self, condition: q.Condition) -> bool:
        if isinstance(condition, q.Exists):
            return self._exists(condition.operand)
        if isinstance(condition, q.Not):
            return not self._condition(condition.operand)
        if isinstance(condition, q.And):
            return self._condition(condition.left) and self._condition(
                condition.right
            )
        if isinstance(condition, q.Or):
            return self._condition(condition.left) or self._condition(
                condition.right
            )
        if isinstance(condition, q.Comparison):
            return self._comparison(condition)
        raise EvaluationError(f"unsupported condition {condition!r}")

    def _exists(self, operand: q.PathOperand) -> bool:
        """Lazy existence test: probe the buffer after every pulled
        token; stop at the first witness or when the context closes."""
        if operand.var in self._scalars:
            return True  # a bound scalar exists
        context = self._context(operand.var)
        path, attribute = _split_attribute(operand.path)
        if not path.steps and attribute is None:
            return True  # exists $x on a bound variable
        while True:
            if self._exists_in_buffer(context, path.steps, 0, attribute):
                return True
            if context.closed or context.purged:
                return False
            if not self._projector.advance():
                return False

    def _exists_in_buffer(self, node, steps, index, attribute) -> bool:
        if index == len(steps):
            if attribute is None:
                return True
            return not node.is_text and attribute in node.attributes
        step = steps[index]
        candidates = self._step_candidates(node, step)
        for nth, child in enumerate(candidates, start=1):
            if step.position is not None and nth < step.position:
                continue
            if self._exists_in_buffer(child, steps, index + 1, attribute):
                return True
            if step.position is not None:
                return False
        return False

    def _comparison(self, comparison: q.Comparison) -> bool:
        left = self._operand_values(comparison.left)
        if not left:
            return False
        right = self._operand_values(comparison.right)
        op = comparison.op
        for lv in left:
            for rv in right:
                if _compare(op, lv, rv):
                    return True
        return False

    def _operand_values(self, operand) -> list:
        if isinstance(operand, q.Literal):
            return [operand.value]
        if isinstance(operand, q.Aggregate):
            return [self._aggregate(operand)]
        if operand.var in self._scalars:
            return [self._scalars[operand.var]]
        context = self._context(operand.var)
        path, attribute = _split_attribute(operand.path)
        self._ensure_closed(context)
        nodes = self._eval_nodeset(context, path)
        if attribute is None:
            return [node.string_value() for node in nodes]
        values = []
        for node in nodes:
            if not node.is_text and attribute in node.attributes:
                values.append(node.attributes[attribute])
        return values

    def _resolve_attributes(self, expr: q.ElementConstructor):
        """Evaluate attribute value templates against the current env.

        Template results are space-joined string values (the XQuery
        attribute value template rule).
        """
        resolved = []
        for name, value in expr.attributes:
            if isinstance(value, q.Aggregate):
                value = format_number(self._aggregate(value))
            elif isinstance(value, q.PathOperand):
                value = " ".join(str(v) for v in self._operand_values(value))
            resolved.append((name, value))
        return resolved

    def _aggregate(self, aggregate: q.Aggregate) -> float | int:
        """Compute an aggregation over the buffered matches."""
        operand = aggregate.operand
        context = self._context(operand.var)
        path, attribute = _split_attribute(operand.path)
        self._ensure_closed(context)
        nodes = self._eval_nodeset(context, path)
        if attribute is not None:
            values = [
                node.attributes[attribute]
                for node in nodes
                if not node.is_text and attribute in node.attributes
            ]
        elif aggregate.func == "count":
            return len(nodes)
        else:
            values = [node.string_value() for node in nodes]
        return compute_aggregate(aggregate.func, values)

    # ------------------------------------------------------------------
    # buffer-local path evaluation
    # ------------------------------------------------------------------

    def _step_candidates(self, node: BufferNode, step: Step):
        if node.is_text:
            # Text nodes have no children, but the self-including axes
            # must still reach the node itself.
            if step.axis in (Axis.SELF, Axis.DESCENDANT_OR_SELF):
                return iter([node] if self._node_matches(node, step) else [])
            return iter(())
        if step.axis is Axis.CHILD:
            matched = (c for c in node.children if self._node_matches(c, step))
        elif step.axis is Axis.DESCENDANT:
            matched = (
                c for c in self._descendants(node) if self._node_matches(c, step)
            )
        elif step.axis is Axis.DESCENDANT_OR_SELF:
            def _dos():
                if not node.is_document and self._node_matches(node, step):
                    yield node
                for c in self._descendants(node):
                    if self._node_matches(c, step):
                        yield c

            matched = _dos()
        elif step.axis is Axis.SELF:
            matched = iter([node] if self._node_matches(node, step) else [])
        else:
            raise EvaluationError(f"unsupported axis {step.axis.value} in buffer path")
        return matched

    @staticmethod
    def _descendants(node: BufferNode):
        stack = list(reversed(node.children))
        while stack:
            child = stack.pop()
            yield child
            if child.is_element:
                stack.extend(reversed(child.children))

    def _eval_frontier(self, context: BufferNode, path: Path) -> list[BufferNode]:
        """All match derivations of *path* from *context* (repeats kept)."""
        frontier = [context]
        for step in path.steps:
            next_frontier: list[BufferNode] = []
            for node in frontier:
                candidates = self._step_candidates(node, step)
                if step.position is not None:
                    for nth, child in enumerate(candidates, start=1):
                        if nth == step.position:
                            next_frontier.append(child)
                            break
                else:
                    next_frontier.extend(candidates)
            frontier = next_frontier
            if not frontier:
                break
        return frontier

    def _eval_nodeset(self, context: BufferNode, path: Path) -> list[BufferNode]:
        """Duplicate-free document-order evaluation of *path*."""
        seen: set[int] = set()
        unique: list[BufferNode] = []
        for node in self._eval_frontier(context, path):
            if id(node) not in seen:
                seen.add(id(node))
                unique.append(node)
        unique.sort(key=lambda node: node.seq)
        return unique

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------

    def _output_path(self, expr: q.PathExpr) -> None:
        if expr.var in self._scalars:
            value = self._scalars[expr.var]
            if isinstance(value, str):
                self._writer.text(value)
            else:
                self._writer.text(format_number(value))
            return
        context = self._context(expr.var)
        path, attribute = _split_attribute(expr.path)
        self._ensure_closed(context)
        nodes = self._eval_nodeset(context, path)
        if attribute is not None:
            for node in nodes:
                if not node.is_text and attribute in node.attributes:
                    self._writer.text(node.attributes[attribute])
            return
        for node in nodes:
            self._write_buffer_node(node)

    def _write_buffer_node(self, node: BufferNode) -> None:
        """Serialize a buffered subtree (iterative: depth-safe)."""
        stack: list = [node]
        while stack:
            item = stack.pop()
            if isinstance(item, str):
                self._writer.end_element(item)
            elif item.is_text:
                self._writer.text(item.text or "")
            elif item.is_document:
                stack.extend(reversed(item.children))
            else:
                self._writer.start_element(
                    item.tag, sorted(item.attributes.items())
                )
                stack.append(item.tag)
                stack.extend(reversed(item.children))

    # ------------------------------------------------------------------
    # signOff + garbage collection
    # ------------------------------------------------------------------

    def _signoff(self, statement: q.SignOff) -> None:
        if not self._gc_enabled:
            return
        context = self._context(statement.var)
        # Pull the context to its end tag first: all role instances the
        # matcher will ever assign below it are then in the buffer, so
        # the removal below is exhaustive (DESIGN.md §3.4).
        self._ensure_closed(context)
        if context.purged:
            return
        for node in self._eval_frontier(context, statement.path):
            self._buffer.remove_role(node, statement.role)


def _split_attribute(path: Path) -> tuple[Path, str | None]:
    """Split a trailing ``@name`` step off *path*."""
    if path.steps and path.steps[-1].axis is Axis.ATTRIBUTE:
        name = path.steps[-1].test.name
        return Path(path.steps[:-1], path.absolute), name
    return path, None


def compute_aggregate(func: str, values: list) -> float | int:
    """Fold *values* (strings or numbers) under an aggregation function.

    ``count`` counts items; the numeric aggregates coerce each value to
    float and return 0 on an empty sequence (the convention of ``sum``;
    ``min``/``max``/``avg`` over nothing also yield 0 here rather than
    an error, which keeps streaming evaluation total).
    """
    if func == "count":
        return len(values)
    numbers = []
    for value in values:
        try:
            numbers.append(float(value))
        except (TypeError, ValueError):
            continue
    if not numbers:
        return 0
    if func == "sum":
        return sum(numbers)
    if func == "avg":
        return sum(numbers) / len(numbers)
    if func == "min":
        return min(numbers)
    if func == "max":
        return max(numbers)
    raise EvaluationError(f"unknown aggregation function {func!r}")


def format_number(value: float | int) -> str:
    """Serialize a number the XQuery way: no trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _compare(op: str, left, right) -> bool:
    """General-comparison of two atomic values.

    Numeric comparison when both values are numbers (or strings that
    parse as numbers), string comparison otherwise — the untyped-data
    convention streaming engines apply without a schema.
    """
    try:
        lnum = float(left)
        rnum = float(right)
    except (TypeError, ValueError):
        lstr, rstr = str(left), str(right)
        if op == "=":
            return lstr == rstr
        if op == "!=":
            return lstr != rstr
        if op == "<":
            return lstr < rstr
        if op == "<=":
            return lstr <= rstr
        if op == ">":
            return lstr > rstr
        if op == ">=":
            return lstr >= rstr
        raise EvaluationError(f"unknown comparison operator {op!r}")
    if op == "=":
        return lnum == rnum
    if op == "!=":
        return lnum != rnum
    if op == "<":
        return lnum < rnum
    if op == "<=":
        return lnum <= rnum
    if op == ">":
        return lnum > rnum
    if op == ">=":
        return lnum >= rnum
    raise EvaluationError(f"unknown comparison operator {op!r}")
