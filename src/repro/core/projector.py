"""The stream pre-projector.

"The stream preprojector reads the input until a token is matched by a
projection path.  The token is copied directly into the buffer, and
roles are assigned." (paper, Section 3)

The projector owns the lexer and maintains a stack of open elements,
each carrying its matcher states.  Elements are materialized into the
buffer *lazily*: a node enters the buffer when it receives a role, or
retroactively when one of its descendants does (the role-less spine
that preserves tree structure).  Subtrees whose root receives neither
states nor roles cannot contain any match and are skipped token by
token without touching the buffer.

``advance()`` processes exactly one token (a skipped subtree counts its
tokens individually in the statistics) and is the single place the
input moves forward — the pull chain of the paper's Figure 2:
evaluator → buffer manager → projector.
"""

from __future__ import annotations

from repro.core.buffer import Buffer, BufferNode
from repro.core.matcher import PathMatcher
from repro.core.stats import BufferStats
from repro.xmlio.lexer import XmlLexer
from repro.xmlio.tokens import TokenKind


class _OpenElement:
    """Stack entry for one open element (or the document)."""

    __slots__ = ("tag", "attributes", "states", "node", "parent")

    def __init__(self, tag, attributes, states, node, parent):
        self.tag = tag
        self.attributes = attributes
        self.states = states
        self.node: BufferNode | None = node
        self.parent: _OpenElement | None = parent


class StreamProjector:
    """Projects the token stream into the buffer, one token at a time."""

    def __init__(
        self,
        lexer: XmlLexer,
        matcher: PathMatcher,
        buffer: Buffer,
        stats: BufferStats | None = None,
    ):
        self._lexer = lexer
        self._matcher = matcher
        self._buffer = buffer
        self._stats = stats if stats is not None else buffer.stats
        states, counts = matcher.initial()
        self._stack = _OpenElement(None, None, states, buffer.root, None)
        if counts:
            buffer.add_roles(buffer.root, counts)
        self.exhausted = False

    # ------------------------------------------------------------------

    def advance(self) -> bool:
        """Process the next input token; False when input is exhausted."""
        if self.exhausted:
            return False
        token = self._lexer.next_token()
        if token is None:
            self.exhausted = True
            self._buffer.close(self._buffer.root)
            return False
        if token.kind is TokenKind.START:
            self._on_start(token)
        elif token.kind is TokenKind.END:
            self._on_end()
        else:
            self._on_text(token)
        return True

    def run_to_end(self) -> None:
        """Drain the remaining input (records the tail of the series)."""
        while self.advance():
            pass

    # ------------------------------------------------------------------

    def _record(self) -> None:
        self._stats.record_token(self._buffer.live_count)

    def _on_start(self, token) -> None:
        top = self._stack
        states, counts = self._matcher.enter_element(top.states, token.name)
        entry = _OpenElement(token.name, token.attributes, states, None, top)
        if counts:
            self._materialize(entry)
            self._buffer.add_roles(entry.node, counts)
        self._record()
        if not states:
            # Nothing below this element can match any projection path.
            self._skip_subtree(entry)
            return
        self._stack = entry

    def _on_end(self) -> None:
        entry = self._stack
        self._stack = entry.parent
        if entry.node is not None:
            self._buffer.close(entry.node)
        self._record()

    def _on_text(self, token) -> None:
        top = self._stack
        _, counts = self._matcher.enter_text(top.states)
        if counts:
            self._materialize(top)
            node = self._buffer.new_text(top.node, token.content)
            self._buffer.add_roles(node, counts)
        self._record()

    def _materialize(self, entry: _OpenElement) -> None:
        """Create buffer nodes for *entry* and any unmaterialized
        ancestors (outermost first, preserving document order).
        Iterative so arbitrarily deep spines cannot exhaust the
        Python stack."""
        if entry.node is not None:
            return
        pending = []
        current = entry
        while current.node is None:
            pending.append(current)
            current = current.parent
        for item in reversed(pending):
            item.node = self._buffer.new_element(
                item.parent.node,
                item.tag,
                {a.name: a.value for a in item.attributes or ()},
            )

    def _skip_subtree(self, entry: _OpenElement) -> None:
        """Consume tokens up to and including the end tag matching the
        just-opened *entry*, bypassing matcher and buffer entirely."""
        if entry.node is None:
            # Only fully irrelevant subtrees count as "skipped"; a
            # buffered leaf whose content cannot match is routine.
            self._stats.subtrees_skipped += 1
        depth = 1
        while depth:
            token = self._lexer.next_token()
            if token is None:  # pragma: no cover - lexer raises first
                self.exhausted = True
                return
            if token.kind is TokenKind.START:
                depth += 1
            elif token.kind is TokenKind.END:
                depth -= 1
            self._record()
        if entry.node is not None:
            self._buffer.close(entry.node)
