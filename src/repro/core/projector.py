"""The stream pre-projector.

"The stream preprojector reads the input until a token is matched by a
projection path.  The token is copied directly into the buffer, and
roles are assigned." (paper, Section 3)

The projector owns the lexer and maintains a stack of open elements,
each carrying its matcher states.  Elements are materialized into the
buffer *lazily*: a node enters the buffer when it receives a role, or
retroactively when one of its descendants does (the role-less spine
that preserves tree structure).  Subtrees whose root receives neither
states nor roles cannot contain any match and are skipped token by
token without touching the buffer.

``advance()`` processes exactly one token (a skipped subtree counts its
tokens individually in the statistics) and is the single place the
input moves forward — the pull chain of the paper's Figure 2:
evaluator → buffer manager → projector.

Two implementations share that contract:

* :class:`StreamProjector` — the reference interpreter: classic token
  objects in, one NFA instance-list interpretation per token.  It is
  the oracle the compiled kernel is differentially tested against.
* :class:`CompiledStreamProjector` — the compiled kernel (DESIGN.md
  §9): the open-element stack holds :class:`~repro.core.matcher.PathDFA`
  state *integers* instead of instance lists, tokens arrive as slotted
  event tuples from the lexer fast path, and one fused dispatch loop
  performs lexer advance + DFA transition + buffer/skip decision with
  no per-token method chaining.  Dead subtrees are fast-forwarded by
  the lexer itself (:meth:`~repro.xmlio.lexer.XmlLexer.skip_subtree`)
  without building tokens at all.  Outputs, watermarks, per-token
  series and role statistics are byte-identical to the interpreter at
  every chunking.
"""

from __future__ import annotations

from repro.core.buffer import Buffer, BufferNode
from repro.core.matcher import PathDFA, PathMatcher
from repro.core.stats import BufferStats
from repro.xmlio.errors import FreezeSignal
from repro.xmlio.lexer import XmlLexer
from repro.xmlio.tokens import TokenKind


class _OpenElement:
    """Stack entry for one open element (or the document)."""

    __slots__ = ("tag", "attributes", "states", "node", "parent")

    def __init__(self, tag, attributes, states, node, parent):
        self.tag = tag
        self.attributes = attributes
        self.states = states
        self.node: BufferNode | None = node
        self.parent: _OpenElement | None = parent


class StreamProjector:
    """Projects the token stream into the buffer, one token at a time."""

    def __init__(
        self,
        lexer: XmlLexer,
        matcher: PathMatcher,
        buffer: Buffer,
        stats: BufferStats | None = None,
    ):
        self._lexer = lexer
        self._matcher = matcher
        self._buffer = buffer
        self._stats = stats if stats is not None else buffer.stats
        states, counts = matcher.initial()
        self._stack = _OpenElement(None, None, states, buffer.root, None)
        if counts:
            buffer.add_roles(buffer.root, counts)
        self.exhausted = False

    # ------------------------------------------------------------------

    def advance(self) -> bool:
        """Process the next input token; False when input is exhausted."""
        if self.exhausted:
            return False
        token = self._lexer.next_token()
        if token is None:
            self.exhausted = True
            self._buffer.close(self._buffer.root)
            return False
        if token.kind is TokenKind.START:
            self._on_start(token)
        elif token.kind is TokenKind.END:
            self._on_end()
        else:
            self._on_text(token)
        return True

    def run_to_end(self) -> None:
        """Drain the remaining input (records the tail of the series)."""
        while self.advance():
            pass

    # ------------------------------------------------------------------

    def _record(self) -> None:
        self._stats.record_token(self._buffer.live_count)

    def _on_start(self, token) -> None:
        top = self._stack
        states, counts = self._matcher.enter_element(top.states, token.name)
        entry = _OpenElement(token.name, token.attributes, states, None, top)
        if counts:
            self._materialize(entry)
            self._buffer.add_roles(entry.node, counts)
        self._record()
        if not states:
            # Nothing below this element can match any projection path.
            self._skip_subtree(entry)
            return
        self._stack = entry

    def _on_end(self) -> None:
        entry = self._stack
        self._stack = entry.parent
        if entry.node is not None:
            self._buffer.close(entry.node)
        self._record()

    def _on_text(self, token) -> None:
        top = self._stack
        _, counts = self._matcher.enter_text(top.states)
        if counts:
            self._materialize(top)
            node = self._buffer.new_text(top.node, token.content)
            self._buffer.add_roles(node, counts)
        self._record()

    def _materialize(self, entry: _OpenElement) -> None:
        """Create buffer nodes for *entry* and any unmaterialized
        ancestors (outermost first, preserving document order).
        Iterative so arbitrarily deep spines cannot exhaust the
        Python stack."""
        if entry.node is not None:
            return
        pending = []
        current = entry
        while current.node is None:
            pending.append(current)
            current = current.parent
        for item in reversed(pending):
            item.node = self._buffer.new_element(
                item.parent.node,
                item.tag,
                {a.name: a.value for a in item.attributes or ()},
            )

    def _skip_subtree(self, entry: _OpenElement) -> None:
        """Consume tokens up to and including the end tag matching the
        just-opened *entry*, bypassing matcher and buffer entirely."""
        if entry.node is None:
            # Only fully irrelevant subtrees count as "skipped"; a
            # buffered leaf whose content cannot match is routine.
            self._stats.subtrees_skipped += 1
        depth = 1
        while depth:
            token = self._lexer.next_token()
            if token is None:  # pragma: no cover - lexer raises first
                self.exhausted = True
                return
            if token.kind is TokenKind.START:
                depth += 1
            elif token.kind is TokenKind.END:
                depth -= 1
            self._record()
        if entry.node is not None:
            self._buffer.close(entry.node)


class CompiledStreamProjector:
    """The fused dispatch loop over DFA states (the compiled kernel).

    Drop-in replacement for :class:`StreamProjector` with the same
    ``advance()`` / ``run_to_end()`` / ``exhausted`` contract and
    byte-identical observable behaviour; only the per-token machinery
    differs:

    * the lexer side is the event fast path — slotted tuples, no token
      objects — and irrelevant subtrees are consumed by
      :meth:`~repro.xmlio.lexer.XmlLexer.skip_subtree` in one call;
    * the matcher side is one memo-dict lookup per token against the
      plan's shared :class:`~repro.core.matcher.PathDFA` (the oracle
      NFA only runs on a memo miss, once per ``(state, tag)`` ever);
    * the open-element stack is four parallel lists (tag, attrs, DFA
      state, buffer node) — pushing an element allocates nothing.
    """

    __slots__ = (
        "_lexer",
        "_dfa",
        "_buffer",
        "_stats",
        "_next_event",
        "_element_memo",
        "_text_memo",
        "_tags",
        "_attrs",
        "_states",
        "_nodes",
        "_pending_skip",
        "exhausted",
    )

    def __init__(
        self,
        lexer: XmlLexer,
        dfa: PathDFA,
        buffer: Buffer,
        stats: BufferStats | None = None,
    ):
        self._lexer = lexer
        self._dfa = dfa
        self._buffer = buffer
        self._stats = stats if stats is not None else buffer.stats
        # Hot-path bindings: the memo lists are append-only and shared
        # (never reassigned) by every session of the plan.
        self._next_event = lexer.next_event
        self._element_memo = dfa._element_memo
        self._text_memo = dfa._text_memo
        # The open-element stack, root (document) at index 0.
        self._tags: list = [None]
        self._attrs: list = [None]
        self._states: list[int] = [dfa.start]
        self._nodes: list[BufferNode | None] = [buffer.root]
        #: a subtree skip a freeze interrupted: ``(node,)`` where
        #: *node* is the element being closed by the skip (or None for
        #: a fully irrelevant subtree).  The lexer parks its own half.
        self._pending_skip: tuple[BufferNode | None] | None = None
        if dfa.start_roles:
            buffer.add_roles(buffer.root, dfa.start_roles)
        self.exhausted = False

    # ------------------------------------------------------------------

    def advance(self) -> bool:
        """Process the next input token; False when input is exhausted."""
        if self.exhausted:
            return False
        if self._pending_skip is not None:
            # finish the subtree skip a freeze interrupted — the tail
            # of the very advance() call that was unwound, so its bulk
            # token record lands before any other buffer activity
            (node,) = self._pending_skip
            count = self._lexer.skip_subtree()
            self._pending_skip = None
            self._stats.record_tokens(count, self._buffer.live_count)
            if node is not None:
                self._buffer.close(node)
            return True
        event = self._next_event()
        if event is None:
            self.exhausted = True
            self._buffer.close(self._buffer.root)
            return False
        buffer = self._buffer
        kind = event[0]
        states = self._states
        if kind == 0:  # EVENT_START
            name = event[1]
            state = states[-1]
            entry = self._element_memo[state].get(name)
            if entry is None:
                entry = self._dfa.compute_element(state, name)
            child, parent, counts = entry
            if parent != state:
                # a first-witness [1] step of the parent just exhausted
                states[-1] = parent
            if counts is not None:
                node = self._materialize_child(name, event[2])
                buffer.add_roles(node, counts)
            else:
                node = None
            self._stats.record_token(buffer.live_count)
            if child:  # live state: descend
                self._tags.append(name)
                self._attrs.append(event[2])
                states.append(child)
                self._nodes.append(node)
            else:  # dead state: nothing below this element can match
                self._skip_subtree(node)
        elif kind == 1:  # EVENT_END
            self._tags.pop()
            self._attrs.pop()
            states.pop()
            node = self._nodes.pop()
            if node is not None:
                buffer.close(node)
            self._stats.record_token(buffer.live_count)
        else:  # EVENT_TEXT
            state = states[-1]
            entry = self._text_memo[state]
            if entry is None:
                entry = self._dfa.text(state)
            counts, parent = entry
            if counts is not None:
                top = len(states) - 1
                parent_node = self._nodes[top]
                if parent_node is None:
                    parent_node = self._materialize(top)
                node = buffer.new_text(parent_node, event[3])
                buffer.add_roles(node, counts)
            if parent != state:
                states[-1] = parent
            self._stats.record_token(buffer.live_count)
        return True

    def run_to_end(self) -> None:
        """Drain the remaining input (records the tail of the series)."""
        advance = self.advance
        while advance():
            pass

    # ------------------------------------------------------------------

    def _materialize(self, index: int) -> BufferNode:
        """Create buffer nodes for the stack entry at *index* and any
        unmaterialized ancestors (outermost first, preserving document
        order) — the role-less spine that holds the tree shape."""
        nodes = self._nodes
        depth = index
        while nodes[depth] is None:
            depth -= 1
        tags = self._tags
        attrs = self._attrs
        new_element = self._buffer.new_element
        while depth < index:
            depth += 1
            nodes[depth] = new_element(nodes[depth - 1], tags[depth], attrs[depth])
        return nodes[index]

    def _materialize_child(self, tag, attrs) -> BufferNode:
        """Materialize the arriving element (plus its spine)."""
        top = len(self._nodes) - 1
        parent = self._nodes[top]
        if parent is None:
            parent = self._materialize(top)
        return self._buffer.new_element(parent, tag, attrs)

    def _skip_subtree(self, node: BufferNode | None) -> None:
        """Fast-forward over the just-opened element's subtree: the
        lexer consumes it without building tokens, and the statistics
        record the significant-token count in one bulk step."""
        if node is None:
            # Only fully irrelevant subtrees count as "skipped"; a
            # buffered leaf whose content cannot match is routine.
            self._stats.subtrees_skipped += 1
        try:
            count = self._lexer.skip_subtree()
        except FreezeSignal:
            # already counted in subtrees_skipped; park the node being
            # closed so the resumed advance() must not re-count it
            self._pending_skip = (node,)
            raise
        self._stats.record_tokens(count, self._buffer.live_count)
        if node is not None:
            self._buffer.close(node)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Match state as a dict of primitives plus BufferNode refs.

        DFA state *ids* are process-local (lazily interned); the
        snapshot stores each stack level's canonical NFA-instance
        multiset — ``((role, step, count), ...)`` — which is stable
        across processes and re-interned on restore.
        """
        dfa_states = self._dfa._states
        return {
            "tags": list(self._tags),
            "attrs": [
                None if attrs is None else tuple(dict(attrs).items())
                for attrs in self._attrs
            ],
            "states": [dfa_states[state] for state in self._states],
            "nodes": list(self._nodes),
            "exhausted": self.exhausted,
            "pending_skip": self._pending_skip,
        }

    def restore_state(self, state: dict, resolve) -> None:
        """Adopt a :meth:`snapshot_state` dict; *resolve* maps decoded
        node references back to buffer nodes."""
        self._tags = list(state["tags"])
        self._attrs = list(state["attrs"])
        intern_state = self._dfa.intern_state
        self._states = [intern_state(key) for key in state["states"]]
        self._nodes = [resolve(ref) for ref in state["nodes"]]
        self.exhausted = state["exhausted"]
        pending = state["pending_skip"]
        self._pending_skip = None if pending is None else (resolve(pending[0]),)
