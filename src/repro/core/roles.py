"""Roles: the unit of buffer-relevance accounting.

"Instead of counting references, we employ the concept of roles which
are assigned to nodes.  Intuitively, a role serves as a metaphor for
the future relevance of a node.  Roles are statically derived from the
query." (paper, Section 2)

Every role corresponds to one projection path; the paper's running
example derives roles r1–r7.  A role records where it came from
(binding a loop variable, output, an existence test, a comparison), the
variable it is *anchored* at, and — filled in by the placement pass —
where its ``signOff`` will be inserted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.xpath.ast import Path


class RoleReason(enum.Enum):
    """Why a projection path (and hence a role) exists."""

    ROOT = "root"  # the document root, role r1
    BINDING = "binding"  # enumerates the nodes a for-loop binds
    OUTPUT = "output"  # subtree is copied to the output
    EXISTS = "exists"  # witness for an existence test
    COMPARISON = "comparison"  # value needed for a comparison
    AGGREGATE = "aggregate"  # nodes (count) or values (sum/avg/min/max)


@dataclass
class Role:
    """One role = one projection path.

    Attributes:
        name: stable identifier, ``r1``, ``r2``, ...
        path: the absolute projection path that assigns this role.
        reason: why the role exists.
        anchor_var: loop variable the role is rooted at (``None`` for
            the root role and absolute output paths).
        suffix: ``path`` relative to the anchor variable's binding path.
        placement_var: loop variable at the end of whose body the
            ``signOff`` is placed; ``None`` means end of query.  May
            differ from ``anchor_var`` when the signOff was *hoisted*
            out of a non-ancestor loop nest (value joins, see
            DESIGN.md §3.3).
        signoff_var / signoff_path: the operand of the inserted
            ``signOff`` statement.
    """

    name: str
    path: Path
    reason: RoleReason
    anchor_var: str | None
    suffix: Path
    placement_var: str | None = None
    signoff_var: str | None = None
    signoff_path: Path = field(default_factory=Path)
    hoisted: bool = False

    def describe(self) -> str:
        """One-line description in the style of the paper's role table."""
        return f"{self.name}: {self.path}"


class RoleTable:
    """The set of roles of a compiled query, in derivation order."""

    def __init__(self):
        self._roles: list[Role] = []
        self._by_name: dict[str, Role] = {}

    def new_role(
        self,
        path: Path,
        reason: RoleReason,
        anchor_var: str | None,
        suffix: Path,
    ) -> Role:
        """Create, register and return a fresh role."""
        name = f"r{len(self._roles) + 1}"
        role = Role(name, path, reason, anchor_var, suffix)
        self._roles.append(role)
        self._by_name[name] = role
        return role

    def __iter__(self):
        return iter(self._roles)

    def __len__(self) -> int:
        return len(self._roles)

    def __getitem__(self, name: str) -> Role:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def projection_paths(self) -> list[Path]:
        """The projection paths, one per role, in role order."""
        return [role.path for role in self._roles]

    def describe(self) -> str:
        """Multi-line role table like the paper's Section 2 listing."""
        return "\n".join(role.describe() for role in self._roles)
