"""Push-based streaming sessions: feed XML chunks, pull results.

The paper's runtime is a *pull* chain — evaluator → buffer manager →
stream pre-projector → lexer — which blocks whenever the next token has
not arrived (Section 3).  Network servers, however, receive input
*push*-style, in arbitrary chunks.  :class:`StreamSession` bridges the
two: the pull chain runs on a dedicated worker while ``feed(chunk)``
hands input across a small bounded channel, so evaluation, active
garbage collection and result emission all progress concurrently with
input arrival.  The observable behaviour — output bytes, buffer
watermark, per-token series — is byte-for-byte identical to a one-shot
:meth:`repro.GCXEngine.run`, regardless of how the input is chunked,
because the evaluator consumes the very same token stream in the very
same order.

Results are **incremental** (DESIGN.md §10): every fragment the
evaluator serializes flows through an output channel the moment it is
produced, while input is still arriving.  Consumers choose their side
of the contract:

* ``drain_output()`` — non-blocking: everything produced since the
  last drain;
* ``next_output(max_chars, timeout)`` — blocking: the next bounded
  fragment (what the server's RESULT pump uses);
* ``on_output=callback`` / ``output_stream=sink`` — push delivery on
  the session worker; ``finish()`` then returns an empty ``output``.

Anything not consumed early is returned by ``finish()`` as
``RunResult.output``, so plain callers keep the classic contract.
``max_pending_output`` bounds produced-but-undrained output: beyond it
the evaluator pauses until the consumer catches up (output-side
backpressure, the mirror image of the input chunk channel).

Sessions are **bytes-native** (DESIGN.md §11): ``feed()`` takes the
raw UTF-8 wire bytes and hands them — without a decode pass — to the
bytes-domain lexer (:class:`~repro.xmlio.lexer_bytes.ByteXmlLexer`),
which scans bytes directly and decodes text lazily.  ``str`` chunks
are still accepted (encoded once on the way in), so plain-text callers
keep working; either way the observable behaviour is identical because
the bytes lexer is held byte-identical to the str oracle.  With
``binary_output=True`` the output side is bytes too: fragments are
UTF-8-encoded once as they are produced and ``drain_output()`` /
``next_output()`` return ``bytes`` cut at UTF-8 character boundaries —
what the server's RESULT pump puts on the wire with no re-encode.

Many sessions may run concurrently over one immutable
:class:`~repro.core.plan.QueryPlan`; each session owns its mutable
runtime state (projector, buffer, stats, writer, channels) and nothing
else is shared.

Typical use::

    engine = GCXEngine()
    plan = engine.compile(query_text)          # once
    session = engine.session(plan)             # per stream
    for chunk in chunks:                       # arbitrary chunking
        session.feed(chunk)
        early = session.drain_output()         # results so far
    result = session.finish()                  # RunResult, as ever
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.core.buffer import Buffer
from repro.core.codegen import CodegenEvaluator, GeneratedStreamProjector
from repro.core.evaluator import PullEvaluator
from repro.core.plan import QueryPlan
from repro.core.program import CompiledEvaluator
from repro.core.projector import CompiledStreamProjector, StreamProjector
from repro.core.snapshot import (
    decode_session,
    encode_session,
    plan_digest,
    verify_plan,
)
from repro.core.stats import BufferStats
from repro.xmlio.errors import FreezeSignal
from repro.xmlio.lexer_bytes import ByteXmlLexer
from repro.xmlio.writer import XmlWriter

#: Default upper bound on chunks queued between ``feed()`` and the
#: worker.  A small bound gives backpressure: a producer cannot race
#: megabytes ahead of evaluation, so input memory stays O(chunks).
DEFAULT_MAX_PENDING_CHUNKS = 8

#: Sentinel a :class:`_ChunkChannel` hands to the consumer instead of a
#: chunk when the session wants the pull chain to unwind for a
#: checkpoint.  Distinct from ``None`` (end of input).
_FREEZE = object()


class SessionStateError(RuntimeError):
    """A session method was called in the wrong lifecycle state."""


class _ChunkChannel:
    """Bounded single-producer / single-consumer chunk hand-off.

    Three terminal states matter: *closed* (producer signalled end of
    input; consumer drains what remains), and *abandoned* (consumer is
    gone — finished or failed; producers stop blocking and their input
    is discarded).
    """

    def __init__(self, capacity: int = DEFAULT_MAX_PENDING_CHUNKS):
        self._chunks: deque[bytes] = deque()
        self._capacity = max(1, capacity)
        self._closed = False
        self._abandoned = False
        self._interrupt = False
        self._cond = threading.Condition()

    def put(self, chunk: bytes) -> bool:
        """Queue *chunk*; blocks while full.  False if abandoned."""
        with self._cond:
            while len(self._chunks) >= self._capacity and not self._abandoned:
                self._cond.wait()
            if self._abandoned:
                return False
            if self._closed:
                raise SessionStateError("channel already closed")
            self._chunks.append(chunk)
            self._cond.notify_all()
            return True

    def close(self) -> None:
        """Producer side: no more chunks will arrive."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def abandon(self) -> None:
        """Consumer side: stop accepting input, release producers."""
        with self._cond:
            self._abandoned = True
            self._chunks.clear()
            self._cond.notify_all()

    def interrupt(self) -> None:
        """Make the consumer's next ``get()`` return the ``_FREEZE``
        sentinel instead of a chunk.  Queued chunks stay queued — they
        become the snapshot's input backlog."""
        with self._cond:
            self._interrupt = True
            self._cond.notify_all()

    def backlog(self) -> list[bytes]:
        """Chunks queued but not yet consumed (snapshot input side)."""
        with self._cond:
            return list(self._chunks)

    def preload(self, chunks) -> None:
        """Re-queue a restored snapshot's input backlog (may exceed the
        capacity bound transiently; the worker drains it first)."""
        with self._cond:
            self._chunks.extend(chunks)
            self._cond.notify_all()

    def get(self):
        """Next chunk; blocks while empty.  ``None`` at end of input,
        ``_FREEZE`` when interrupted for a checkpoint."""
        with self._cond:
            while not (
                self._chunks
                or self._closed
                or self._abandoned
                or self._interrupt
            ):
                self._cond.wait()
            if self._interrupt:
                # freeze outranks queued input: the chunks serialize
                # as backlog and are consumed after restore instead
                self._interrupt = False
                return _FREEZE
            if self._chunks:
                chunk = self._chunks.popleft()
                self._cond.notify_all()
                return chunk
            return None


class _OutputChannel:
    """Incremental result sink between the evaluator and a consumer.

    The session's :class:`~repro.xmlio.writer.XmlWriter` streams into
    this channel from the worker thread; ``drain()`` / ``next()`` hand
    fragments to the caller side.  With a *limit*, ``write`` blocks
    while more than *limit* characters sit undrained — output-side
    backpressure that keeps a slow consumer from accumulating the
    whole serialized result (a bounded channel therefore needs a
    concurrent consumer; ``finish()`` alone never drains early).

    *passthrough* (a ``write()`` sink) or *callback* delivery bypass
    buffering entirely: fragments are forwarded on the worker thread
    and ``drain()`` stays empty, matching the classic ``output_stream``
    contract.

    With *binary* the channel accumulates **bytes**: every fragment is
    UTF-8-encoded exactly once as the worker produces it, *limit* and
    ``max_chars`` count bytes, and a bounded ``_take`` backs its cut
    off to a UTF-8 character boundary so every drained piece is valid
    UTF-8 on its own — the server forwards the pieces as RESULT frame
    payloads verbatim, with no re-encode pass and no re-slice.
    """

    def __init__(
        self, limit: int | None = None, callback=None, passthrough=None,
        binary: bool = False,
    ):
        self._parts: list = []
        self._pending = 0
        self._limit = limit if limit is None else max(1, limit)
        self._callback = callback
        self._passthrough = passthrough
        self._binary = binary
        self._empty = b"" if binary else ""
        self._closed = False
        self._abandoned = False
        self._frozen = False
        self._cond = threading.Condition()
        #: ``time.perf_counter()`` of the first fragment, or ``None``
        self.first_output_at: float | None = None
        #: cumulative length of everything handed to the consumer
        #: (bytes when binary, chars otherwise).  Survives
        #: checkpoint/restore — see :attr:`StreamSession.delivered_output`.
        self.taken_total = 0

    # -- worker side -------------------------------------------------------

    def write(self, chunk: str) -> None:
        if not chunk:
            return
        if self.first_output_at is None:
            self.first_output_at = time.perf_counter()
        if self._passthrough is not None:
            self._passthrough.write(chunk)
            return
        if self._callback is not None:
            self._callback(chunk)
            return
        if self._binary:
            chunk = chunk.encode("utf-8")
        with self._cond:
            if self._limit is not None:
                while self._pending >= self._limit and not self._abandoned:
                    self._cond.wait()
            if self._abandoned:
                return
            self._parts.append(chunk)
            self._pending += len(chunk)
            self._cond.notify_all()

    def close(self) -> None:
        """Worker side: no more fragments will be produced."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def freeze(self) -> None:
        """Worker side, checkpoint: stop producing *for now*.  Blocked
        consumers wake, drain what remains and then see ``None`` — the
        same termination signal as ``close()`` — but ``unfreeze()``
        reopens the channel when the session thaws."""
        with self._cond:
            self._frozen = True
            self._cond.notify_all()

    def unfreeze(self) -> None:
        with self._cond:
            self._frozen = False
            self._cond.notify_all()

    def backlog(self) -> list:
        """Produced-but-undrained fragments (snapshot output side)."""
        with self._cond:
            return list(self._parts)

    def preload(self, parts) -> None:
        """Re-queue a restored snapshot's output backlog."""
        with self._cond:
            for part in parts:
                self._parts.append(part)
                self._pending += len(part)
            self._cond.notify_all()

    # -- consumer side -----------------------------------------------------

    def _take(self, max_chars: int | None):
        """Pop up to *max_chars* characters (bytes when binary;
        everything when ``None``).  Caller holds the lock."""
        if max_chars is None or self._pending <= max_chars:
            taken = self._empty.join(self._parts)
            self._parts.clear()
            self._pending = 0
        else:
            joined = self._empty.join(self._parts)
            cut = max_chars
            if self._binary:
                # Never cut a multi-byte character in half: back off
                # past UTF-8 continuation bytes so the taken piece is
                # valid UTF-8 on its own (at most 3 steps).  When
                # *max_chars* is smaller than the first character,
                # overshoot to its end instead — a fragment may exceed
                # the bound by up to 3 bytes, never be invalid.
                while cut > 0 and (joined[cut] & 0xC0) == 0x80:
                    cut -= 1
                if cut == 0:
                    size = len(joined)
                    cut = max_chars
                    while cut < size and (joined[cut] & 0xC0) == 0x80:
                        cut += 1
            taken = joined[:cut]
            remainder = joined[cut:]
            if remainder:
                self._parts[:] = [remainder]
                self._pending = len(remainder)
            else:  # an overshot cut may swallow the whole buffer
                self._parts.clear()
                self._pending = 0
        if taken:
            self.taken_total += len(taken)
            self._cond.notify_all()
        return taken

    def drain(self, max_chars: int | None = None):
        """Everything produced and not yet drained (non-blocking)."""
        with self._cond:
            return self._take(max_chars)

    def next(self, max_chars: int | None = None, timeout: float | None = None):
        """Block until output is available; ``None`` once the channel
        is closed and empty, empty (``""``/``b""``) on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._parts:
                if self._closed or self._abandoned or self._frozen:
                    return None
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        if not self._parts:
                            return self._empty if not self._closed else None
            return self._take(max_chars)

    def abandon(self) -> None:
        """Consumer gone: discard pending output, release the worker."""
        with self._cond:
            self._abandoned = True
            self._parts.clear()
            self._pending = 0
            self._cond.notify_all()


class StreamSession:
    """One streaming evaluation of one plan over one pushed document.

    Sessions are single-use: construct (evaluation starts immediately),
    ``feed()`` any number of chunks, then ``finish()`` exactly once to
    collect the :class:`~repro.core.engine.RunResult`.  Sessions also
    work as context managers; leaving the block finishes the session
    (or aborts it if an exception is already propagating).

    Errors raised by the pipeline — malformed XML, evaluation errors —
    surface on the next ``feed()`` or at ``finish()``.
    """

    def __init__(
        self,
        plan: QueryPlan,
        gc_enabled: bool = True,
        record_series: bool = True,
        drain: bool = True,
        output_stream=None,
        on_output=None,
        max_pending_output: int | None = None,
        max_pending_chunks: int = DEFAULT_MAX_PENDING_CHUNKS,
        compiled: bool = True,
        compiled_eval: bool = True,
        codegen: bool = True,
        fused_lexer: bool = True,
        binary_output: bool = False,
        checkpointable: bool = False,
    ):
        if checkpointable:
            if not (compiled and plan.dfa is not None):
                raise SessionStateError(
                    "checkpointable sessions require the compiled "
                    "projector tier (plan.dfa)"
                )
            if not (compiled_eval and plan.program is not None):
                raise SessionStateError(
                    "checkpointable sessions require the compiled "
                    "evaluator tier (plan.program)"
                )
            # The generated kernels keep their dispatch state in
            # exec-compiled locals that cannot be captured mid-loop;
            # pin the table-driven tier, whose state is all on the
            # instance (DESIGN.md §16).
            codegen = False
            fused_lexer = False
        self.plan = plan
        self._checkpointable = checkpointable
        self._gc_enabled = gc_enabled
        self._frozen = False
        self._drain = drain
        self._binary_output = binary_output
        self._channel = _ChunkChannel(max_pending_chunks)
        self._output = _OutputChannel(
            limit=max_pending_output,
            callback=on_output,
            passthrough=output_stream,
            binary=binary_output,
        )
        self._stats = BufferStats(record_series=record_series)
        self._buffer = Buffer(self._stats)
        # The input side is bytes end to end: chunks cross the channel
        # as raw UTF-8 and the bytes-domain lexer scans them directly
        # (text decoded lazily; skipped subtrees never decoded).
        self._lexer = ByteXmlLexer(refill=self._pull_chunk)
        # The plan's matcher/dfa are shared by all sessions: per-stream
        # match state lives on the projector's stack, and the dfa's
        # transition memo only ever gains deterministic entries — one
        # session discovering a tag makes it a dict lookup for all.
        kernels = plan.kernels if codegen else None
        if compiled and plan.dfa is not None:
            if (
                kernels is not None
                and fused_lexer
                and kernels.lexer is not None
            ):
                # deepest tier: the fused lexer front-end batch-feeds
                # the generated dispatch, bulk-skipping dead subtrees
                # before they are ever tokenized
                self._projector = GeneratedStreamProjector(
                    kernels.lexer, self._lexer, plan.dfa,
                    self._buffer, self._stats,
                )
            elif kernels is not None and kernels.projector is not None:
                self._projector = GeneratedStreamProjector(
                    kernels.projector, self._lexer, plan.dfa,
                    self._buffer, self._stats,
                )
            else:
                self._projector = CompiledStreamProjector(
                    self._lexer, plan.dfa, self._buffer, self._stats
                )
        else:
            self._projector = StreamProjector(
                self._lexer, plan.matcher, self._buffer, self._stats
            )
        self._writer = XmlWriter(stream=self._output)
        # The plan's operator program is immutable and shared too; all
        # per-run state (slots, loop frames) lives on the evaluator.
        if compiled_eval and plan.program is not None:
            if kernels is not None and kernels.evaluator is not None:
                self._evaluator = CodegenEvaluator(
                    kernels.evaluator, plan.program, self._projector,
                    self._buffer, self._writer, gc_enabled,
                )
            else:
                self._evaluator = CompiledEvaluator(
                    plan.program, self._projector, self._buffer, self._writer,
                    gc_enabled,
                )
        else:
            self._evaluator = PullEvaluator(
                plan.rewritten, self._projector, self._buffer, self._writer, gc_enabled
            )
        self._error: BaseException | None = None
        self._result = None
        self._bytes_fed = 0
        self._started = time.perf_counter()
        self._worker = threading.Thread(
            target=self._run, name="gcx-stream-session", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # worker side (the pull chain)
    # ------------------------------------------------------------------

    def _pull_chunk(self):
        """Refill callable handed to the lexer: converts the channel's
        freeze sentinel into the :class:`FreezeSignal` that unwinds the
        pull chain with every component checkpoint-consistent."""
        chunk = self._channel.get()
        if chunk is _FREEZE:
            raise FreezeSignal()
        return chunk

    def _run(self) -> None:
        frozen = False
        try:
            self._evaluator.run()
            if self._drain:
                self._projector.run_to_end()
        except FreezeSignal:
            frozen = True
            self._frozen = True
        except BaseException as exc:  # noqa: BLE001 - reraised on the caller side
            self._error = exc
        finally:
            if frozen:
                # Keep input queued (it is the snapshot's backlog) and
                # only *freeze* the output: consumers drain what is
                # left and see the termination signal; ``thaw()``
                # reopens the channel and restarts the worker.
                self._output.freeze()
            else:
                # Unblock any producer; late input is irrelevant now.
                # The output channel closes so blocked consumers wake
                # up too.
                self._channel.abandon()
                self._output.close()

    # ------------------------------------------------------------------
    # caller side (the push interface)
    # ------------------------------------------------------------------

    def feed(self, chunk: bytes | str) -> "StreamSession":
        """Hand the next input chunk to the session.

        ``bytes`` chunks are the native path — raw socket/file data,
        forwarded to the lexer without a decode pass.  ``str`` chunks
        are UTF-8-encoded once here.  Chunk boundaries are arbitrary —
        any **byte** offset, even inside a tag name, an entity
        reference or a multi-byte character, is fine.  Blocks briefly
        when the session is more than a few chunks behind
        (backpressure).
        """
        if self._result is not None:
            raise SessionStateError("session already finished")
        self._raise_pending()
        if chunk:
            if isinstance(chunk, str):
                chunk = chunk.encode("utf-8")
            else:
                chunk = bytes(chunk)
            self._bytes_fed += len(chunk)
            self._channel.put(chunk)
            self._raise_pending()
        return self

    def drain_output(self):
        """Serialized output produced since the last drain (or start).

        Non-blocking; fragments stream out while input is still being
        fed (``bytes`` under ``binary_output``, ``str`` otherwise).
        Whatever is never drained is returned by ``finish()`` as
        ``RunResult.output``, so calling this is optional.
        """
        return self._output.drain()

    def next_output(
        self, max_chars: int | None = None, timeout: float | None = None
    ):
        """Block for the next output fragment (at most *max_chars* —
        bytes under ``binary_output``, characters otherwise).

        Returns ``None`` once evaluation has ended and everything was
        drained — the pump loop termination signal — and an empty
        fragment when *timeout* elapses with nothing new.
        """
        return self._output.next(max_chars, timeout)

    def finish(self):
        """Signal end of input and return the :class:`RunResult`.

        Idempotent: repeated calls return the same result object.
        ``RunResult.output`` holds whatever was not already consumed
        via ``drain_output()`` / ``next_output()`` / ``on_output`` /
        ``output_stream``.
        """
        if self._result is not None:
            return self._result
        self._channel.close()
        self._worker.join()
        self._raise_pending()
        from repro.core.engine import RunResult  # circular at import time

        stats = self._stats
        stats.elapsed = time.perf_counter() - self._started
        stats.final_buffered = self._buffer.live_count
        self._buffer.clear()
        output = self._output.drain()
        if self._binary_output:
            # RunResult.output keeps the classic str contract; the
            # undrained remainder is whatever a concurrent consumer
            # (e.g. the server's RESULT pump) did not pick up.
            output = output.decode("utf-8")
        stats.output_chars = self._writer.chars_written
        self._result = RunResult(output, stats, self.plan)
        return self._result

    def abort(self) -> None:
        """Tear the session down without collecting a result."""
        self._channel.abandon()
        self._channel.close()
        self._output.abandon()
        self._worker.join()
        self._output.close()

    # ------------------------------------------------------------------
    # checkpointing (DESIGN.md §16)
    # ------------------------------------------------------------------

    @property
    def checkpointable(self) -> bool:
        return self._checkpointable

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> None:
        """Unwind the pull chain and park the session, checkpoint-ready.

        Interrupts the input channel so the worker's next refill raises
        :class:`FreezeSignal`; every stateful stage parks its in-flight
        work (lexer skip locals, projector pending skip, evaluator pc)
        on the way out, and the worker thread exits with the whole
        chain quiescent.  The output channel is frozen, not closed:
        blocked consumers drain what remains and see the termination
        signal, and ``thaw()`` reopens it.

        Raises :class:`SessionStateError` for non-checkpointable or
        finished sessions, and when the worker completes before the
        interrupt lands (possible with ``drain=False`` once all input
        was consumed — there is nothing left to checkpoint).  Like
        ``finish()``, freezing a session whose *bounded* output channel
        is full requires a concurrent consumer, otherwise the worker
        never reaches a refill.
        """
        if not self._checkpointable:
            raise SessionStateError(
                "session was not opened with checkpointable=True"
            )
        if self._result is not None:
            raise SessionStateError("session already finished")
        if self._frozen:
            return
        self._raise_pending()
        self._channel.interrupt()
        self._worker.join()
        self._raise_pending()
        if not self._frozen:
            raise SessionStateError(
                "session completed before it could freeze; "
                "collect the result with finish() instead"
            )

    def thaw(self) -> None:
        """Restart a frozen session's worker; evaluation resumes at the
        exact op the freeze unwound."""
        if not self._frozen:
            raise SessionStateError("session is not frozen")
        self._frozen = False
        self._output.unfreeze()
        self._worker = threading.Thread(
            target=self._run, name="gcx-stream-session", daemon=True
        )
        self._worker.start()

    def snapshot(self) -> bytes:
        """Serialize the session into a versioned, self-contained blob.

        Freezes first when necessary; an already-frozen session (the
        server checkpoints that way, between freeze and thaw, after its
        RESULT pump drained) is encoded in place and stays frozen.
        The blob restores with :meth:`restore` — in this process or any
        other holding an equivalent plan — and the restored session
        continues byte-identically.
        """
        if self._frozen:
            return self._encode_frozen()
        self.freeze()
        try:
            return self._encode_frozen()
        finally:
            self.thaw()

    def _encode_frozen(self) -> bytes:
        first = self._output.first_output_at
        return encode_session(
            {
                "plan_text": self.plan.canonical_text(),
                "roles_digest": plan_digest(self.plan),
                "gc_enabled": self._gc_enabled,
                "drain": self._drain,
                "binary_output": self._binary_output,
                "bytes_fed": self._bytes_fed,
                "elapsed": time.perf_counter() - self._started,
                "first_output_delta": (
                    None if first is None else first - self._started
                ),
                "stats": self._stats,
                "buffer": self._buffer,
                "lexer": self._lexer.snapshot_state(),
                "projector": self._projector.snapshot_state(),
                "chars_written": self._writer.chars_written,
                "delivered_output": self._output.taken_total,
                "evaluator": self._evaluator.snapshot_state(),
                "output_parts": self._output.backlog(),
                "input_chunks": self._channel.backlog(),
            }
        )

    @classmethod
    def restore(
        cls,
        plan: QueryPlan,
        blob: bytes,
        *,
        output_stream=None,
        on_output=None,
        max_pending_output: int | None = None,
        max_pending_chunks: int = DEFAULT_MAX_PENDING_CHUNKS,
    ) -> "StreamSession":
        """Rebuild a session from a :meth:`snapshot` blob.

        *plan* must be equivalent to the one the snapshot was taken
        against — same canonical query text *and* same role analysis —
        otherwise :class:`~repro.core.snapshot.SnapshotPlanMismatch` is
        raised; a blob from a different format version is refused with
        :class:`~repro.core.snapshot.SnapshotFormatError`.  The caller
        resumes feeding at byte offset ``bytes_fed`` and the combined
        output (already-delivered prefix + what this session produces)
        is byte-identical to an uninterrupted run.
        """
        snap = decode_session(blob)
        verify_plan(snap, plan)
        if plan.dfa is None or plan.program is None:
            raise SessionStateError(
                "restore requires the compiled projector and evaluator "
                "tiers (plan.dfa and plan.program)"
            )
        self = cls.__new__(cls)
        self.plan = plan
        self._checkpointable = True
        self._gc_enabled = snap.gc_enabled
        self._frozen = False
        self._drain = snap.drain
        self._binary_output = snap.binary_output
        self._channel = _ChunkChannel(max_pending_chunks)
        self._channel.preload(snap.input_chunks)
        self._output = _OutputChannel(
            limit=max_pending_output,
            callback=on_output,
            passthrough=output_stream,
            binary=snap.binary_output,
        )
        self._output.preload(snap.output_parts)
        # The drained-prefix position carries across restore so a later
        # snapshot reports session-cumulative delivered output, not
        # output since this restore.
        self._output.taken_total = snap.delivered_output
        # Build the chain exactly as __init__ does (construction side
        # effects — start roles on the fresh root — land on objects
        # whose state the snapshot overwrites next).
        self._stats = BufferStats(record_series=snap.stats["record_series"])
        self._buffer = Buffer(self._stats)
        self._lexer = ByteXmlLexer(refill=self._pull_chunk)
        self._projector = CompiledStreamProjector(
            self._lexer, plan.dfa, self._buffer, self._stats
        )
        self._writer = XmlWriter(stream=self._output)
        self._evaluator = CompiledEvaluator(
            plan.program, self._projector, self._buffer, self._writer,
            snap.gc_enabled,
        )
        stats = self._stats
        st = snap.stats
        stats.series = st["series"]
        stats.watermark = st["watermark"]
        stats.tokens = st["tokens"]
        stats.nodes_buffered = st["nodes_buffered"]
        stats.nodes_purged = st["nodes_purged"]
        stats.roles_assigned = st["roles_assigned"]
        stats.roles_removed = st["roles_removed"]
        stats.subtrees_skipped = st["subtrees_skipped"]
        stats.output_chars = st["output_chars"]
        stats.final_buffered = st["final_buffered"]
        self._buffer._seq = snap.seq_counter
        self._buffer.live_count = snap.live_count
        self._buffer.root = snap.root
        self._lexer.restore_state(snap.lexer)
        self._projector.restore_state(snap.projector, snap.resolve)
        self._writer.chars_written = snap.chars_written
        self._evaluator.restore_state(snap.evaluator, snap.resolve)
        self._error = None
        self._result = None
        self._bytes_fed = snap.bytes_fed
        self._started = time.perf_counter() - snap.elapsed
        if snap.first_output_delta is not None:
            self._output.first_output_at = (
                self._started + snap.first_output_delta
            )
        self._worker = threading.Thread(
            target=self._run, name="gcx-stream-session", daemon=True
        )
        self._worker.start()
        return self

    @property
    def bytes_fed(self) -> int:
        """Total input bytes accepted so far (str chunks count their
        UTF-8 encoding)."""
        return self._bytes_fed

    @property
    def delivered_output(self) -> int:
        """Output already handed to the consumer via ``drain_output()``
        / ``next_output()`` (bytes with ``binary_output``, chars
        otherwise), cumulative across checkpoint/restore — the
        session-absolute offset at which a resumed consumer continues
        (DESIGN.md §16)."""
        return self._output.taken_total

    @property
    def finished(self) -> bool:
        return self._result is not None

    @property
    def time_to_first_output(self) -> float | None:
        """Seconds from session start to the first serialized output
        fragment (``None`` while — or if — nothing was produced)."""
        first = self._output.first_output_at
        return None if first is None else first - self._started

    def _raise_pending(self) -> None:
        if self._error is not None:
            # Sticky: every later feed()/finish() re-raises the same
            # failure.  Make sure the worker is gone before handing
            # control back.
            self._channel.close()
            self._worker.join()
            raise self._error

    # ------------------------------------------------------------------

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is not None:
            self.abort()
        elif self._result is None:
            self.finish()
