"""Runtime statistics: the paper's measurement instrumentation.

The demo's central visualisation plots, for every token read from the
input, the number of XML nodes buffered after that token has been
processed (Figures 3(b), 3(c) and 4).  :class:`BufferStats` collects
exactly that series plus the aggregate counters the evaluation table
(Figure 5) reports: high watermark, token count, wall-clock time, and
an estimated memory figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Rough per-node cost of one buffered node in the C++ original —
#: pointers, tag id, role list.  Used only to convert node counts into
#: the "MB" column of the Figure 5 reproduction; DESIGN.md documents
#: this substitution (we measure buffered *nodes*, the paper's primary
#: metric, and derive bytes).
DEFAULT_NODE_BYTES = 112


@dataclass
class BufferStats:
    """Measurements of one engine run."""

    #: buffered-node count after each processed token (the plot series)
    series: list[int] = field(default_factory=list)
    #: highest number of simultaneously buffered nodes
    watermark: int = 0
    #: total tokens processed (start + end + text)
    tokens: int = 0
    #: nodes ever materialized in the buffer
    nodes_buffered: int = 0
    #: nodes reclaimed by active garbage collection
    nodes_purged: int = 0
    #: role instances assigned while projecting the stream
    roles_assigned: int = 0
    #: role instances removed by signOff statements
    roles_removed: int = 0
    #: subtrees the projector skipped without materializing anything
    subtrees_skipped: int = 0
    #: characters of serialized output
    output_chars: int = 0
    #: wall-clock seconds for the complete run
    elapsed: float = 0.0
    #: live buffered nodes when the run finished (before final cleanup)
    final_buffered: int = 0
    #: whether per-token series recording is enabled (benchmarks may
    #: disable it to avoid distorting throughput measurements)
    record_series: bool = True

    def record_token(self, live_count: int) -> None:
        """Record the buffer size after one more token was processed."""
        self.tokens += 1
        if live_count > self.watermark:
            self.watermark = live_count
        if self.record_series:
            self.series.append(live_count)

    def record_tokens(self, count: int, live_count: int) -> None:
        """Record *count* consecutive tokens processed at a constant
        buffer size — the bulk form the compiled projector uses for
        skipped subtrees.  The resulting series is byte-identical to
        *count* individual :meth:`record_token` calls."""
        if count <= 0:
            return
        self.tokens += count
        if live_count > self.watermark:
            self.watermark = live_count
        if self.record_series:
            self.series.extend([live_count] * count)

    def estimated_buffer_bytes(self, node_bytes: int = DEFAULT_NODE_BYTES) -> int:
        """Watermark converted to an estimated byte figure."""
        return self.watermark * node_bytes

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"tokens={self.tokens} watermark={self.watermark} "
            f"buffered={self.nodes_buffered} purged={self.nodes_purged} "
            f"roles+={self.roles_assigned} roles-={self.roles_removed} "
            f"skipped={self.subtrees_skipped} elapsed={self.elapsed:.3f}s"
        )
