"""Insertion of signOff statements at the preemption points.

"To mark the moments in time when buffered nodes are deleted during
query evaluation, the preemption points in query evaluation are defined
and signOff-statements are inserted into the query." (paper, Section 3)

The placement itself (which loop body hosts which signOff, including
hoisting for value joins) is computed by the static analysis; this pass
performs the purely syntactic rewriting: every loop body becomes a
sequence ending in its signOff statements, and query-end signOffs are
appended to the top-level expression.  On the paper's running example
the output is exactly the rewritten query shown in Section 2.
"""

from __future__ import annotations

from repro.core.analysis import StaticAnalysis
from repro.core.roles import Role
from repro.xquery import ast as q


def _signoff_statement(role: Role) -> q.SignOff:
    return q.SignOff(role.signoff_var, role.signoff_path, role.name)


def _append(body: q.Expr, statements: list[q.SignOff]) -> q.Expr:
    if not statements:
        return body
    if isinstance(body, q.Sequence):
        return q.Sequence(body.items + tuple(statements))
    return q.Sequence((body,) + tuple(statements))


def insert_signoffs(query: q.Query, analysis: StaticAnalysis) -> q.Query:
    """Return the rewritten query with signOff statements inserted."""

    def rewrite(expr: q.Expr) -> q.Expr:
        if isinstance(expr, q.Sequence):
            return q.Sequence(tuple(rewrite(item) for item in expr.items))
        if isinstance(expr, q.ForExpr):
            body = rewrite(expr.body)
            roles = analysis.placements.get(expr.var, [])
            body = _append(body, [_signoff_statement(role) for role in roles])
            return q.ForExpr(expr.var, expr.source, body, expr.where)
        if isinstance(expr, q.IfExpr):
            return q.IfExpr(expr.condition, rewrite(expr.then), rewrite(expr.orelse))
        if isinstance(expr, q.ElementConstructor):
            return q.ElementConstructor(expr.tag, expr.attributes, rewrite(expr.body))
        return expr

    body = rewrite(query.body)
    top_roles = analysis.placements.get(None, [])
    body = _append(body, [_signoff_statement(role) for role in top_roles])
    return q.Query(body)
