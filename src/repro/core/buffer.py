"""The GCX buffer: a projected document tree with active garbage
collection.

Every buffered node carries a multiset of roles (a node may hold the
same role several times when descendant axes produce several match
derivations) and an aggregated ``subtree_roles`` count — the number of
role instances in its subtree, itself included.  The aggregate is the
reference-counting analogue the paper describes: it makes the paper's
purge condition ("a node has lost all of its roles … provided that none
of its descendants is assigned a role") an O(1) test, and lets a role
removal cascade deletions up the tree immediately.

A node additionally cannot be purged while it is *open* (its end tag
has not yet been read): its structure is still required to attach
incoming children.  The projector re-checks purgeability when the end
tag arrives.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter

from repro.core.stats import BufferStats


class BufferNode:
    """One node of the buffered, projected tree.

    ``tag`` is ``None`` for text nodes and ``"#document"`` for the
    buffer root.  ``seq`` is a globally increasing arrival number;
    because the projector appends children in stream order, sequence
    order coincides with document order, and iterators resume from a
    remembered ``seq`` even after garbage collection removed nodes.
    """

    __slots__ = (
        "tag",
        "text",
        "attributes",
        "parent",
        "children",
        "child_seqs",
        "seq",
        "closed",
        "purged",
        "roles",
        "subtree_roles",
    )

    def __init__(self, tag, parent, seq, text=None, attributes=None):
        self.tag = tag
        self.text = text
        self.attributes = dict(attributes) if attributes else {}
        self.parent = parent
        self.children: list[BufferNode] = []
        self.child_seqs: list[int] = []
        self.seq = seq
        self.closed = False
        self.purged = False
        self.roles: Counter = Counter()
        self.subtree_roles = 0

    # -- classification ---------------------------------------------------

    @property
    def is_text(self) -> bool:
        return self.tag is None

    @property
    def is_document(self) -> bool:
        return self.tag == "#document"

    @property
    def is_element(self) -> bool:
        return self.tag is not None and self.tag != "#document"

    # -- queries -----------------------------------------------------------

    def role_count(self) -> int:
        """Number of role instances held by this node itself."""
        return sum(self.roles.values())

    def string_value(self) -> str:
        """Concatenated text of the buffered subtree."""
        if self.is_text:
            return self.text or ""
        parts: list[str] = []
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            if node.is_text:
                parts.append(node.text or "")
            else:
                stack.extend(reversed(node.children))
        return "".join(parts)

    def next_child_after(self, after_seq: int, predicate=None) -> "BufferNode | None":
        """First buffered child with ``seq > after_seq`` satisfying
        *predicate* (all children when predicate is None).

        Sequence-based resumption makes iteration robust against
        garbage collection between calls: a purged node simply stops
        being found, and the scan continues from the remembered
        position.
        """
        index = bisect_right(self.child_seqs, after_seq)
        for child in self.children[index:]:
            if predicate is None or predicate(child):
                return child
        return None

    def describe_roles(self) -> str:
        """Compact role annotation like the paper's Figure 1: ``{r2,r5}``."""
        names = []
        for name in sorted(self.roles, key=lambda r: (len(r), r)):
            names.extend([name] * self.roles[name])
        return "{" + ",".join(names) + "}"

    def __repr__(self) -> str:
        label = self.tag if self.tag is not None else f"text:{self.text!r}"
        return f"BufferNode({label} roles={dict(self.roles)})"


class Buffer:
    """The buffer manager: materialization, role accounting, active GC."""

    def __init__(self, stats: BufferStats | None = None):
        self.stats = stats if stats is not None else BufferStats()
        self._seq = 0
        self.root = BufferNode("#document", None, self._next_seq())
        #: number of live buffered nodes, excluding the synthetic root —
        #: the paper's "number of XML nodes buffered".
        self.live_count = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- materialization ---------------------------------------------------

    def new_element(self, parent: BufferNode, tag: str, attributes=None) -> BufferNode:
        """Materialize an element under *parent* (stream order append)."""
        node = BufferNode(tag, parent, self._next_seq(), attributes=attributes)
        parent.children.append(node)
        parent.child_seqs.append(node.seq)
        self.live_count += 1
        self.stats.nodes_buffered += 1
        return node

    def new_text(self, parent: BufferNode, content: str) -> BufferNode:
        """Materialize a text node under *parent*."""
        node = BufferNode(None, parent, self._next_seq(), text=content)
        node.closed = True
        parent.children.append(node)
        parent.child_seqs.append(node.seq)
        self.live_count += 1
        self.stats.nodes_buffered += 1
        return node

    # -- role accounting -----------------------------------------------------

    def add_roles(self, node: BufferNode, role_counts) -> None:
        """Assign role instances to *node* (``role_counts``: name → n)."""
        total = 0
        for name, count in role_counts.items():
            node.roles[name] += count
            total += count
        if total == 0:
            return
        self.stats.roles_assigned += total
        current = node
        while current is not None:
            current.subtree_roles += total
            current = current.parent

    def remove_role(self, node: BufferNode, role: str) -> None:
        """Remove one instance of *role* from *node*; trigger GC.

        Removing a role a node does not hold is a no-op (the signOff
        addressed data that never arrived, e.g. ``price[1]`` of an
        element without price children).
        """
        if node.purged or node.roles.get(role, 0) <= 0:
            return
        node.roles[role] -= 1
        if node.roles[role] == 0:
            del node.roles[role]
        self.stats.roles_removed += 1
        current = node
        while current is not None:
            current.subtree_roles -= 1
            current = current.parent
        self._collect_upward(node)

    # -- garbage collection -----------------------------------------------

    def close(self, node: BufferNode) -> None:
        """Mark *node* closed (its end tag arrived) and re-check GC."""
        node.closed = True
        self._collect_upward(node)

    def _collect_upward(self, node: BufferNode) -> None:
        """Purge *node* and then its ancestors while they qualify.

        Purge condition (paper Section 2 + open-spine pinning):
        closed, no own roles, no role instance anywhere in the subtree.
        """
        current = node
        while (
            current is not None
            and current.parent is not None
            and current.closed
            and not current.purged
            and current.subtree_roles == 0
        ):
            parent = current.parent
            self._purge(current)
            current = parent

    def _purge(self, node: BufferNode) -> None:
        parent = node.parent
        index = bisect_right(parent.child_seqs, node.seq) - 1
        if 0 <= index < len(parent.children) and parent.children[index] is node:
            del parent.children[index]
            del parent.child_seqs[index]
        removed = self._release_subtree(node)
        self.live_count -= removed
        self.stats.nodes_purged += removed

    def _release_subtree(self, node: BufferNode) -> int:
        """Detach a purged subtree; returns the number of nodes freed.

        A purged node has ``subtree_roles == 0``; descendants may still
        be materialized (role-less spine nodes whose close is pending
        never occur below a closed node, but the defensive walk keeps
        the count exact either way).  Iterative so that pathologically
        deep documents cannot exhaust the Python stack.
        """
        count = 0
        stack = [node]
        while stack:
            current = stack.pop()
            current.purged = True
            current.closed = True
            stack.extend(current.children)
            current.children = []
            current.child_seqs = []
            current.parent = None
            count += 1
        return count

    # -- bulk operations -----------------------------------------------------

    def clear(self) -> int:
        """Drop everything (end of run); returns nodes freed."""
        freed = self.live_count
        for child in self.root.children:
            self._release_subtree(child)
        self.root.children = []
        self.root.child_seqs = []
        self.live_count = 0
        return freed

    def iter_live(self):
        """Yield all live buffered nodes (excluding the root), preorder."""
        stack = list(reversed(self.root.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def total_role_instances(self) -> int:
        """Role instances currently held across the buffer."""
        return self.root.subtree_roles

    def render(self, max_nodes: int = 200) -> str:
        """ASCII rendering of the buffer with role annotations, in the
        style of the paper's Figure 1 (used by the demo example)."""
        lines: list[str] = []

        def visit(node: BufferNode, depth: int) -> None:
            if len(lines) >= max_nodes:
                return
            label = node.tag if node.is_element else repr(node.text)
            lines.append("  " * depth + f"{label}{node.describe_roles()}")
            for child in node.children:
                visit(child, depth + 1)

        for child in self.root.children:
            visit(child, 0)
        return "\n".join(lines)
