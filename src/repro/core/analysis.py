"""Static analysis: projection paths, roles, and signOff placement.

Given a *normalized* query (single-step for-loops, unique variable
names), this pass derives:

1. an absolute **binding path** for every loop variable,
2. the **role table** — one role per projection path, with the same
   derivation rules the paper's example exhibits (roles r1–r7):

   * the document root gets a role on ``/``;
   * each for-loop contributes a *binding* role on its variable's path;
   * every output expression ``$x/p`` contributes a role on
     ``path($x)/p/descendant-or-self::node()`` (the whole subtree is
     serialized);
   * every ``exists $x/p`` contributes a role on ``path($x)/p[1]``
     (only the first witness is needed);
   * every comparison operand ``$x/p`` contributes a role on
     ``path($x)/p/descendant-or-self::node()`` (general comparisons
     need the string value of every selected node);

3. the **placement** of each role's ``signOff`` statement (the
   preemption points), including the hoisting rule for roles used
   under loops that are not ancestors in the binding chain — the value
   join pattern (DESIGN.md §3.3 explains why the instance accounting
   stays exact).

Attribute steps never appear in projection paths: our buffer stores
attributes inline on their owner element, so a role for ``$x/p/@a`` is
attached to the owner path ``path($x)/p``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xpath.ast import Axis, Path, Step
from repro.xquery import ast as q
from repro.core.roles import Role, RoleReason, RoleTable


class AnalysisError(ValueError):
    """Raised when a (supposedly normalized) query cannot be analyzed."""


@dataclass
class StaticAnalysis:
    """Result of the static analysis of one query."""

    roles: RoleTable
    #: absolute binding path of every loop variable
    variable_paths: dict[str, Path]
    #: binding parent of every loop variable (None = document root)
    binding_parents: dict[str, str | None]
    #: roles whose signOff goes at the end of a given loop's body,
    #: keyed by loop variable; key None = end of the whole query.
    placements: dict[str | None, list[Role]]

    def describe_roles(self) -> str:
        """The role table in the style of the paper's Section 2."""
        return self.roles.describe()


class _Analyzer:
    def __init__(self, first_witness: bool = True):
        self.roles = RoleTable()
        self.variable_paths: dict[str, Path] = {}
        self.binding_parents: dict[str, str | None] = {}
        # Loop chain (outermost first) at each variable's binder.
        self.var_chains: dict[str, tuple[str, ...]] = {}
        self.placements: dict[str | None, list[Role]] = {}
        self.first_witness = first_witness
        # let-bound scalar variables: no binding path, no roles
        self.scalar_vars: set[str] = set()

    # -- helpers ---------------------------------------------------------

    def _ancestors(self, var: str) -> set[str]:
        """The binding chain of *var*: itself and transitive sources."""
        chain = {var}
        current = self.binding_parents.get(var)
        while current is not None:
            chain.add(current)
            current = self.binding_parents.get(current)
        return chain

    def _place(self, role: Role) -> None:
        """Compute the preemption point for *role* and record it."""
        anchor = role.anchor_var
        if anchor is None:
            # Root role or absolute output path: only safe at query end.
            role.placement_var = None
            role.signoff_var = None
            role.signoff_path = role.path
            if role.reason is not RoleReason.ROOT:
                self.placements.setdefault(None, []).append(role)
            return
        chain = self.var_chains[anchor]
        ancestors = self._ancestors(anchor)
        offender_index = None
        for index, var in enumerate(chain):
            if var not in ancestors:
                offender_index = index
                break
        if offender_index is None:
            role.placement_var = anchor
            role.signoff_var = anchor
            role.signoff_path = role.suffix
        else:
            role.hoisted = True
            if offender_index == 0:
                role.placement_var = None
                role.signoff_var = None
                role.signoff_path = role.path
            else:
                host = chain[offender_index - 1]
                host_path = self.variable_paths[host]
                anchor_path = self.variable_paths[anchor]
                role.placement_var = host
                role.signoff_var = host
                role.signoff_path = anchor_path.suffix_after(host_path).concat(
                    role.suffix
                )
        self.placements.setdefault(role.placement_var, []).append(role)

    def _new_role(
        self,
        reason: RoleReason,
        anchor_var: str | None,
        suffix: Path,
    ) -> Role:
        if anchor_var is None:
            path = suffix if suffix.absolute else Path(suffix.steps, absolute=True)
        else:
            path = self.variable_paths[anchor_var].concat(suffix)
        role = self.roles.new_role(path, reason, anchor_var, suffix)
        self._place(role)
        return role

    @staticmethod
    def _split_attribute(path: Path) -> tuple[Path, bool]:
        """Strip a trailing attribute step; True if one was stripped."""
        if path.steps and path.steps[-1].axis is Axis.ATTRIBUTE:
            return Path(path.steps[:-1], path.absolute), True
        return path, False

    @staticmethod
    def _ends_in_text(path: Path) -> bool:
        return bool(path.steps) and path.steps[-1].test.kind == "text"

    # -- walk --------------------------------------------------------------

    def analyze(self, query: q.Query) -> StaticAnalysis:
        self.roles.new_role(
            Path((), absolute=True), RoleReason.ROOT, None, Path((), absolute=True)
        )
        self._walk(query.body, ())
        return StaticAnalysis(
            self.roles,
            self.variable_paths,
            self.binding_parents,
            self.placements,
        )

    def _walk(self, expr: q.Expr, chain: tuple[str, ...]) -> None:
        if isinstance(expr, q.Sequence):
            for item in expr.items:
                self._walk(item, chain)
        elif isinstance(expr, q.ForExpr):
            self._walk_for(expr, chain)
        elif isinstance(expr, q.LetExpr):
            if isinstance(expr.value, q.Aggregate):
                self._role_for_aggregate(expr.value)
            self.scalar_vars.add(expr.var)
            self._walk(expr.body, chain)
        elif isinstance(expr, q.IfExpr):
            self._walk_condition(expr.condition)
            self._walk(expr.then, chain)
            self._walk(expr.orelse, chain)
        elif isinstance(expr, q.ElementConstructor):
            for _name, value in expr.attributes:
                if isinstance(value, q.PathOperand):
                    # the template needs the matches' string values,
                    # exactly like a comparison operand
                    self._role_for_comparison(value)
                elif isinstance(value, q.Aggregate):
                    self._role_for_aggregate(value)
            self._walk(expr.body, chain)
        elif isinstance(expr, q.PathExpr):
            self._role_for_output(expr)
        elif isinstance(expr, q.AggregateExpr):
            self._role_for_aggregate(expr.aggregate)
        elif isinstance(expr, q.SignOff):
            raise AnalysisError("signOff statements cannot appear in user queries")
        elif isinstance(expr, (q.Empty, q.TextLiteral)):
            pass
        else:  # pragma: no cover - exhaustive over the AST
            raise AnalysisError(f"unsupported expression {expr!r}")

    def _walk_for(self, expr: q.ForExpr, chain: tuple[str, ...]) -> None:
        if expr.where is not None:
            raise AnalysisError(
                "where clauses must be lowered before analysis; run normalize_query"
            )
        source = expr.source
        if len(source.path.steps) != 1:
            raise AnalysisError(
                f"for ${expr.var}: source must be single-step; run normalize_query"
            )
        if expr.var in self.variable_paths:
            raise AnalysisError(
                f"duplicate variable ${expr.var}; run normalize_query"
            )
        if source.var is None:
            self.variable_paths[expr.var] = Path(source.path.steps, absolute=True)
        elif source.var in self.variable_paths:
            base = self.variable_paths[source.var]
            self.variable_paths[expr.var] = base.concat(
                Path(source.path.steps, absolute=False)
            )
        else:
            raise AnalysisError(f"unbound variable ${source.var}")
        self.binding_parents[expr.var] = source.var
        self.var_chains[expr.var] = chain + (expr.var,)
        self._new_role(RoleReason.BINDING, expr.var, Path((), absolute=False))
        # Make the binding role's suffix path relative to the variable
        # itself (empty): signOff($x, r).  Done by _new_role above.
        self._walk(expr.body, chain + (expr.var,))

    def _role_for_output(self, expr: q.PathExpr) -> None:
        if expr.var in self.scalar_vars:
            return  # scalar output needs no buffered nodes
        path, is_attribute = self._split_attribute(expr.path)
        if expr.var is not None and expr.var not in self.variable_paths:
            raise AnalysisError(f"unbound variable ${expr.var}")
        if is_attribute or self._ends_in_text(path):
            suffix = path
        else:
            suffix = path.with_descendant_or_self()
        if expr.var is None and not suffix.steps and not is_attribute:
            # Outputting "/" — the whole document; the root role covers it
            # only nominally, a subtree role is still required.
            suffix = Path((), absolute=True).with_descendant_or_self()
        if expr.var is not None and not suffix.steps:
            # Outputting $x itself: subtree role on the variable's path.
            suffix = Path((), absolute=False).with_descendant_or_self()
        self._new_role(RoleReason.OUTPUT, expr.var, _as_relative(suffix, expr.var))

    def _walk_condition(self, condition: q.Condition) -> None:
        if isinstance(condition, q.Exists):
            self._role_for_exists(condition.operand)
        elif isinstance(condition, q.Not):
            self._walk_condition(condition.operand)
        elif isinstance(condition, (q.And, q.Or)):
            self._walk_condition(condition.left)
            self._walk_condition(condition.right)
        elif isinstance(condition, q.Comparison):
            for operand in (condition.left, condition.right):
                if isinstance(operand, q.PathOperand):
                    self._role_for_comparison(operand)
                elif isinstance(operand, q.Aggregate):
                    self._role_for_aggregate(operand)
        else:  # pragma: no cover - exhaustive over conditions
            raise AnalysisError(f"unsupported condition {condition!r}")

    def _role_for_exists(self, operand: q.PathOperand) -> None:
        if operand.var in self.scalar_vars:
            return  # a bound scalar trivially exists
        path, is_attribute = self._split_attribute(operand.path)
        if not path.steps:
            # "exists $x" is trivially true for a bound variable and
            # "exists $x/@a" needs only the owner element, which the
            # binding role already buffers.
            return
        if self.first_witness and not is_attribute:
            last = path.steps[-1]
            if last.axis is Axis.CHILD and last.position is None:
                path = Path(
                    path.steps[:-1] + (Step(last.axis, last.test, 1),),
                    path.absolute,
                )
        self._new_role(
            RoleReason.EXISTS, operand.var, _as_relative(path, operand.var)
        )

    def _role_for_aggregate(self, aggregate: q.Aggregate) -> None:
        """Projection requirements of an aggregation.

        ``count`` needs only the matched nodes themselves (not their
        subtrees — counting is cheaper than outputting); the value
        aggregates need each match's string value, like comparison
        operands.
        """
        operand = aggregate.operand
        path, is_attribute = self._split_attribute(operand.path)
        if not path.steps and is_attribute:
            return  # aggregating $x/@a: owner covered by binding role
        if (
            aggregate.func != "count"
            and not is_attribute
            and not self._ends_in_text(path)
        ):
            path = path.with_descendant_or_self()
        self._new_role(
            RoleReason.AGGREGATE, operand.var, _as_relative(path, operand.var)
        )

    def _role_for_comparison(self, operand: q.PathOperand) -> None:
        if operand.var in self.scalar_vars:
            return  # the scalar value is already computed
        path, is_attribute = self._split_attribute(operand.path)
        if not path.steps and is_attribute:
            return  # owner element covered by the binding role
        if not is_attribute and not self._ends_in_text(path):
            path = path.with_descendant_or_self()
        if not path.steps:
            return  # comparing $x itself: subtree needed
        self._new_role(
            RoleReason.COMPARISON, operand.var, _as_relative(path, operand.var)
        )


def _as_relative(path: Path, var: str | None) -> Path:
    """Suffix paths of var-anchored roles must be relative."""
    if var is None:
        return path
    if path.absolute:
        return Path(path.steps, absolute=False)
    return path


def analyze_query(query: q.Query, first_witness: bool = True) -> StaticAnalysis:
    """Run the static analysis on a normalized *query*.

    Args:
        query: output of :func:`repro.xquery.normalize_query`.
        first_witness: apply the ``[1]`` first-witness optimisation to
            existence tests (ablation switch A2 in DESIGN.md).

    Raises:
        AnalysisError: if the query is not in core form.
    """
    return _Analyzer(first_witness).analyze(query)
