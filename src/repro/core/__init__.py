"""The GCX core: active garbage collection for streaming XQuery.

This package implements the paper's contribution:

* :mod:`repro.core.analysis` — static analysis: projection paths and
  roles derived from the query (paper Section 3, "Static analysis");
* :mod:`repro.core.signoff` — preemption points: where ``signOff``
  statements are inserted into the rewritten query;
* :mod:`repro.core.matcher` — streaming projection-path matcher with
  match-derivation multiplicities;
* :mod:`repro.core.buffer` — the buffer tree with per-node role
  multisets and immediate, cascading garbage collection;
* :mod:`repro.core.projector` — the stream pre-projector;
* :mod:`repro.core.evaluator` — the pull-based query evaluator (the
  interpreting oracle);
* :mod:`repro.core.program` — the compiled evaluation kernel: the
  query→operator-program compiler and its VM (DESIGN.md §10);
* :mod:`repro.core.engine` — the user-facing facade.

Submodules are imported lazily by the package facade in
:mod:`repro.core.engine`; import that module (or the top-level
``repro`` package) for the public API.
"""

from repro.core.roles import Role, RoleReason, RoleTable
from repro.core.analysis import AnalysisError, StaticAnalysis, analyze_query

__all__ = [
    "AnalysisError",
    "Role",
    "RoleReason",
    "RoleTable",
    "StaticAnalysis",
    "analyze_query",
]
