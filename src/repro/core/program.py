"""The compiled evaluation kernel: query → operator program → VM.

PR 3 compiled the *input* half of the paper's pull chain (token→role
matching) into a lazy DFA; this module compiles the *evaluation* half.
The signOff-rewritten query AST is lowered once per plan into a flat
**operator program** — a tuple of slotted ops (for-scan, branch, emit,
path pull, aggregate, signOff, jumps) — and executed by
:class:`CompiledEvaluator`, a compact VM that keeps an explicit
binding/loop-frame stack instead of re-walking the AST with
``isinstance`` chains for every binding.

Everything that can be resolved statically is resolved at compile
time and cached on the ops:

* variable references become integer **slots** (the compiler replays
  the interpreter's exact dynamic scoping, including its quirk that a
  scalar ``let`` binding shadows a node binding of the same name, so
  even the error cases match the oracle message for message);
* relative paths are pre-split into ``(steps, trailing attribute)``
  with one compiled node-test predicate per step;
* constant constructor fragments and text literals are pre-escaped and
  merged into single raw-emission ops.

The VM drives the very same blocking-pull discipline as the
interpreting :class:`~repro.core.evaluator.PullEvaluator` (which stays
untouched as the semantics oracle, mirroring the DFA/NFA pattern of
DESIGN.md §9): whenever data is not yet buffered it advances the
projector one token at a time, and signOff contexts are pulled to
their end tags before any role is removed, preserving the §3 ordering
that makes active garbage collection sound.  Output bytes, watermark,
per-token series and role statistics are byte-identical to the oracle
at every input chunking (DESIGN.md §10).

Queries outside the compiler's reach (e.g. attribute steps in the
middle of a buffer path) raise :class:`ProgramCompileError`; the
engine then stores ``program=None`` on the plan and sessions fall back
to the interpreting evaluator, so compilation coverage is a pure
optimisation, never a correctness risk.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.buffer import BufferNode
from repro.core.evaluator import (
    EvaluationError,
    _compare,
    _split_attribute,
    compute_aggregate,
    format_number,
)
from repro.xmlio.errors import FreezeSignal
from repro.xmlio.writer import escape_attribute, escape_text
from repro.xpath.ast import Axis, NodeTest, Path
from repro.xquery import ast as q


class ProgramCompileError(EvaluationError):
    """The query contains a construct the program compiler cannot
    lower; the caller falls back to the interpreting evaluator."""


# ---------------------------------------------------------------------------
# opcodes
# ---------------------------------------------------------------------------

OP_FOR_INIT = 0  # (op, iter_spec)              push a loop frame
OP_FOR_NEXT = 1  # (op, slot, exit_pc)          bind next node or exit loop
OP_JUMP = 2  # (op, target_pc)
OP_IF = 3  # (op, cond_spec, else_pc)
OP_LET = 4  # (op, slot, value_spec)            bind a scalar
OP_EMIT_RAW = 5  # (op, text)                   pre-escaped constant output
OP_EMIT_SCALAR = 6  # (op, slot)                output a scalar binding
OP_OUTPUT_PATH = 7  # (op, ctx, steps, attr)    serialize selected subtrees
OP_EMIT_AGG = 8  # (op, agg_spec)               output an aggregate value
OP_CONSTRUCT = 9  # (op, tag, attr_specs)       start tag with dynamic attrs
OP_SIGNOFF = 10  # (op, ctx, steps, role)       role removal + GC
OP_RAISE = 11  # (op, message)                  deferred EvaluationError

OP_NAMES = {
    OP_FOR_INIT: "ForScan",
    OP_FOR_NEXT: "ForNext",
    OP_JUMP: "Jump",
    OP_IF: "IfBranch",
    OP_LET: "LetBind",
    OP_EMIT_RAW: "Emit",
    OP_EMIT_SCALAR: "EmitScalar",
    OP_OUTPUT_PATH: "PathPull",
    OP_EMIT_AGG: "Aggregate",
    OP_CONSTRUCT: "ConstructStart",
    OP_SIGNOFF: "SignOff",
    OP_RAISE: "Raise",
}

# iteration kinds (first element of an iter_spec)
ITER_CHILD = 0  # (kind, ctx, pred, position)
ITER_DESC = 1  # (kind, ctx, pred, position, include_self)
ITER_SELF = 2  # (kind, ctx, pred)

# condition-spec kinds
C_TRUE = 0  # (kind,)
C_EXISTS = 1  # (kind, ctx, steps, attr)
C_NOT = 2  # (kind, sub)
C_AND = 3  # (kind, left, right)
C_OR = 4  # (kind, left, right)
C_CMP = 5  # (kind, op, left_values, right_values)
C_RAISE = 6  # (kind, message)

# operand-spec kinds (comparison sides, attribute templates)
V_LIT = 0  # (kind, value)
V_AGG = 1  # (kind, agg_spec)
V_SCALAR = 2  # (kind, slot)
V_PATH = 3  # (kind, ctx, steps, attr)
V_RAISE = 4  # (kind, message)

# attribute-template kinds inside OP_CONSTRUCT
A_CONST = 0  # (name, kind, raw_value)
A_AGG = 1  # (name, kind, agg_spec)
A_PATH = 2  # (name, kind, operand_spec)

# buffer-path axis codes inside a compiled step (axis, pred, position)
AX_CHILD = 0
AX_DESC = 1
AX_DOS = 2
AX_SELF = 3

_AXIS_CODES = {
    Axis.CHILD: AX_CHILD,
    Axis.DESCENDANT: AX_DESC,
    Axis.DESCENDANT_OR_SELF: AX_DOS,
    Axis.SELF: AX_SELF,
}


def _compile_pred(test: NodeTest):
    """One callable per node test, valid for element, text and document
    buffer nodes alike (mirrors ``PullEvaluator._node_matches``)."""
    kind = test.kind
    if kind == "name":
        name = test.name

        def pred(node, _name=name):
            return node.tag == _name

        return pred
    if kind == "wildcard":
        return lambda node: node.tag is not None and node.tag != "#document"
    if kind == "text":
        return lambda node: node.tag is None
    if kind == "node":
        return lambda node: True
    raise ProgramCompileError(f"unsupported node test {test!r}")


# ---------------------------------------------------------------------------
# the program object
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OperatorProgram:
    """One compiled evaluation program: immutable, plan-owned, shared
    by every run and session of the plan (all per-run state lives on
    the executing :class:`CompiledEvaluator`)."""

    ops: tuple
    n_slots: int

    @property
    def op_count(self) -> int:
        return len(self.ops)

    def describe(self) -> str:
        """Readable op listing (DESIGN.md §10's textual form)."""
        lines = []
        for pc, op in enumerate(self.ops):
            name = OP_NAMES.get(op[0], f"op{op[0]}")
            args = " ".join(_describe_arg(a) for a in op[1:])
            lines.append(f"{pc:3d}  {name} {args}".rstrip())
        return "\n".join(lines)


def _describe_arg(arg) -> str:
    if callable(arg):
        return "<pred>"
    if isinstance(arg, tuple):
        return "(" + " ".join(_describe_arg(a) for a in arg) + ")"
    return repr(arg)


# ---------------------------------------------------------------------------
# the compiler
# ---------------------------------------------------------------------------


class _Compiler:
    """Single-pass lowering of a rewritten query body into ops.

    Scoping replays the interpreter exactly: two dynamic namespaces
    (node bindings and scalar ``let`` bindings) where the scalar one is
    consulted first, and a binder *removes* its name on scope exit just
    like the interpreter's ``dict.pop`` — so references that the oracle
    would reject at runtime compile into :data:`OP_RAISE` ops carrying
    the identical message.
    """

    def __init__(self):
        self.ops: list = []
        self.n_slots = 0
        self._nodes: dict[str, int] = {}  # name -> node slot
        self._scalars: dict[str, int] = {}  # name -> scalar slot
        #: merge fence: EMIT_RAW coalescing must not cross a jump target
        self._fence = 0

    # -- emission plumbing ------------------------------------------------

    def _emit(self, op: tuple) -> int:
        self.ops.append(op)
        return len(self.ops) - 1

    def _label(self) -> int:
        """Current pc as a jump target; fences raw-text merging."""
        self._fence = len(self.ops)
        return len(self.ops)

    def _patch(self, at: int, *, target: int) -> None:
        op = self.ops[at]
        self.ops[at] = op[:-1] + (target,)

    def _raw(self, text: str) -> None:
        if not text:
            return
        ops = self.ops
        if len(ops) > self._fence and ops[-1][0] == OP_EMIT_RAW:
            ops[-1] = (OP_EMIT_RAW, ops[-1][1] + text)
        else:
            self._emit((OP_EMIT_RAW, text))

    def _new_slot(self) -> int:
        slot = self.n_slots
        self.n_slots += 1
        return slot

    # -- variable resolution (mirrors PullEvaluator._context) -------------

    def _context_ref(self, var: str | None):
        """Slot (or ``None`` for the root) of a *node* context, or an
        error message matching the oracle's ``_context``."""
        if var is None:
            return None, None
        if var in self._scalars:
            return None, f"${var} is a scalar let binding, not a node"
        slot = self._nodes.get(var)
        if slot is None:
            return None, f"unbound variable ${var}"
        return slot, None

    # -- paths -------------------------------------------------------------

    def _steps(self, path: Path) -> tuple:
        compiled = []
        for step in path.steps:
            code = _AXIS_CODES.get(step.axis)
            if code is None:
                raise ProgramCompileError(
                    f"unsupported axis {step.axis.value} in buffer path"
                )
            compiled.append((code, _compile_pred(step.test), step.position))
        return tuple(compiled)

    def _path_spec(self, var: str | None, path: Path):
        """``(ctx, steps, attribute)`` or an error message."""
        ctx, error = self._context_ref(var)
        if error is not None:
            return None, error
        relative, attribute = _split_attribute(path)
        return (ctx, self._steps(relative), attribute), None

    # -- operands / aggregates / conditions --------------------------------

    def _agg_spec(self, aggregate: q.Aggregate) -> tuple:
        """``(func, ctx, steps, attribute)``; func None defers an error."""
        operand = aggregate.operand
        spec, error = self._path_spec(operand.var, operand.path)
        if error is not None:
            return (None, error, None, None)
        ctx, steps, attribute = spec
        return (aggregate.func, ctx, steps, attribute)

    def _operand_spec(self, operand) -> tuple:
        if isinstance(operand, q.Literal):
            return (V_LIT, operand.value)
        if isinstance(operand, q.Aggregate):
            return (V_AGG, self._agg_spec(operand))
        if isinstance(operand, q.PathOperand):
            if operand.var is not None and operand.var in self._scalars:
                return (V_SCALAR, self._scalars[operand.var])
            spec, error = self._path_spec(operand.var, operand.path)
            if error is not None:
                return (V_RAISE, error)
            return (V_PATH,) + spec
        raise ProgramCompileError(f"unsupported operand {operand!r}")

    def _cond_spec(self, condition: q.Condition) -> tuple:
        if isinstance(condition, q.Exists):
            operand = condition.operand
            if operand.var is not None and operand.var in self._scalars:
                return (C_TRUE,)  # a bound scalar exists
            spec, error = self._path_spec(operand.var, operand.path)
            if error is not None:
                return (C_RAISE, error)
            ctx, steps, attribute = spec
            if not steps and attribute is None:
                return (C_TRUE,)  # exists $x on a bound variable
            return (C_EXISTS, ctx, steps, attribute)
        if isinstance(condition, q.Not):
            return (C_NOT, self._cond_spec(condition.operand))
        if isinstance(condition, q.And):
            return (
                C_AND,
                self._cond_spec(condition.left),
                self._cond_spec(condition.right),
            )
        if isinstance(condition, q.Or):
            return (
                C_OR,
                self._cond_spec(condition.left),
                self._cond_spec(condition.right),
            )
        if isinstance(condition, q.Comparison):
            return (
                C_CMP,
                condition.op,
                self._operand_spec(condition.left),
                self._operand_spec(condition.right),
            )
        raise ProgramCompileError(f"unsupported condition {condition!r}")

    # -- expressions -------------------------------------------------------

    def compile_body(self, expr: q.Expr) -> None:
        if isinstance(expr, q.Sequence):
            for item in expr.items:
                self.compile_body(item)
        elif isinstance(expr, q.ForExpr):
            self._compile_for(expr)
        elif isinstance(expr, q.LetExpr):
            self._compile_let(expr)
        elif isinstance(expr, q.IfExpr):
            self._compile_if(expr)
        elif isinstance(expr, q.ElementConstructor):
            self._compile_construct(expr)
        elif isinstance(expr, q.PathExpr):
            self._compile_output_path(expr)
        elif isinstance(expr, q.AggregateExpr):
            self._emit((OP_EMIT_AGG, self._agg_spec(expr.aggregate)))
        elif isinstance(expr, q.SignOff):
            self._compile_signoff(expr)
        elif isinstance(expr, q.TextLiteral):
            self._raw(escape_text(expr.value))
        elif isinstance(expr, q.Empty):
            pass
        else:
            raise ProgramCompileError(f"unsupported expression {expr!r}")

    def _compile_for(self, expr: q.ForExpr) -> None:
        source = expr.source
        ctx, error = self._context_ref(source.var)
        if error is not None:
            self._emit((OP_RAISE, error))
            return
        if len(source.path.steps) != 1:
            self._emit(
                (
                    OP_RAISE,
                    f"for source {source} is not single-step; "
                    "query was not normalized",
                )
            )
            return
        step = source.path.steps[0]
        pred = _compile_pred(step.test)
        if step.axis is Axis.CHILD:
            iter_spec = (ITER_CHILD, ctx, pred, step.position)
        elif step.axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            iter_spec = (
                ITER_DESC,
                ctx,
                pred,
                step.position,
                step.axis is Axis.DESCENDANT_OR_SELF,
            )
        elif step.axis is Axis.SELF:
            iter_spec = (ITER_SELF, ctx, pred)
        else:
            self._emit(
                (OP_RAISE, f"cannot iterate over axis {step.axis.value}")
            )
            return
        slot = self._new_slot()
        self._nodes[expr.var] = slot
        self._emit((OP_FOR_INIT, iter_spec))
        head = self._label()
        next_pc = self._emit((OP_FOR_NEXT, slot, -1))
        self.compile_body(expr.body)
        self._emit((OP_JUMP, head))
        self._patch(next_pc, target=self._label())
        # mirror the interpreter's env.pop: the name is gone, whatever
        # it shadowed stays gone too
        self._nodes.pop(expr.var, None)

    def _compile_let(self, expr: q.LetExpr) -> None:
        if isinstance(expr.value, q.Aggregate):
            value_spec = ("agg", self._agg_spec(expr.value))
        elif isinstance(expr.value, q.Literal):
            value_spec = ("lit", expr.value.value)
        else:
            raise ProgramCompileError(f"unsupported let value {expr.value!r}")
        slot = self._new_slot()
        self._scalars[expr.var] = slot
        self._emit((OP_LET, slot, value_spec))
        self.compile_body(expr.body)
        self._scalars.pop(expr.var, None)

    def _compile_if(self, expr: q.IfExpr) -> None:
        cond = self._cond_spec(expr.condition)
        if_pc = self._emit((OP_IF, cond, -1))
        self.compile_body(expr.then)
        if isinstance(expr.orelse, q.Empty):
            self._patch(if_pc, target=self._label())
            return
        jump_pc = self._emit((OP_JUMP, -1))
        self._patch(if_pc, target=self._label())
        self.compile_body(expr.orelse)
        self._patch(jump_pc, target=self._label())

    def _compile_construct(self, expr: q.ElementConstructor) -> None:
        attributes = expr.attributes
        if all(isinstance(value, str) for _name, value in attributes):
            rendered = "".join(
                f' {name}="{escape_attribute(value)}"'
                for name, value in attributes
            )
            self._raw(f"<{expr.tag}{rendered}>")
        else:
            specs = []
            for name, value in attributes:
                if isinstance(value, q.Aggregate):
                    specs.append((name, A_AGG, self._agg_spec(value)))
                elif isinstance(value, q.PathOperand):
                    specs.append((name, A_PATH, self._operand_spec(value)))
                else:
                    specs.append((name, A_CONST, value))
            self._emit((OP_CONSTRUCT, expr.tag, tuple(specs)))
        self.compile_body(expr.body)
        self._raw(f"</{expr.tag}>")

    def _compile_output_path(self, expr: q.PathExpr) -> None:
        if expr.var is not None and expr.var in self._scalars:
            self._emit((OP_EMIT_SCALAR, self._scalars[expr.var]))
            return
        spec, error = self._path_spec(expr.var, expr.path)
        if error is not None:
            self._emit((OP_RAISE, error))
            return
        self._emit((OP_OUTPUT_PATH,) + spec)

    def _compile_signoff(self, expr: q.SignOff) -> None:
        ctx, error = self._context_ref(expr.var)
        if error is not None:
            self._emit((OP_RAISE, error))
            return
        self._emit((OP_SIGNOFF, ctx, self._steps(expr.path), expr.role))


def compile_program(query: q.Query) -> OperatorProgram:
    """Lower a (signOff-rewritten) query into an operator program.

    Raises:
        ProgramCompileError: the query uses a construct outside the
            compiled fragment; callers fall back to the interpreting
            :class:`~repro.core.evaluator.PullEvaluator`.
    """
    compiler = _Compiler()
    compiler.compile_body(query.body)
    return OperatorProgram(tuple(compiler.ops), compiler.n_slots)


# ---------------------------------------------------------------------------
# the VM
# ---------------------------------------------------------------------------


def _write_buffer_node(writer, node: BufferNode) -> None:
    """Serialize a buffered subtree (iterative: depth-safe); the exact
    twin of ``PullEvaluator._write_buffer_node``."""
    stack: list = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            writer.end_element(item)
        elif item.tag is None:
            writer.text(item.text or "")
        elif item.tag == "#document":
            stack.extend(reversed(item.children))
        else:
            writer.start_element(item.tag, sorted(item.attributes.items()))
            stack.append(item.tag)
            stack.extend(reversed(item.children))


def _descendants(node: BufferNode):
    """Preorder descendants of a buffered node (elements descend)."""
    stack = list(reversed(node.children))
    while stack:
        child = stack.pop()
        yield child
        if child.tag is not None:
            stack.extend(reversed(child.children))


class CompiledEvaluator:
    """Executes one operator program over one projected stream.

    Drop-in replacement for :class:`~repro.core.evaluator.PullEvaluator`
    with the same constructor shape and ``run()`` contract; only the
    dispatch machinery differs.  Loop state lives in explicit frames —
    small mutable lists on a stack — and variable bindings in a flat
    slot list, so an iteration costs a few list operations instead of
    an AST walk.
    """

    def __init__(
        self,
        program: OperatorProgram,
        projector,
        buffer,
        writer,
        gc_enabled: bool = True,
    ):
        self._program = program
        self._projector = projector
        self._buffer = buffer
        self._writer = writer
        self._gc_enabled = gc_enabled
        self._slots: list = [None] * program.n_slots
        # Dispatch state lives on the instance so a freeze can unwind
        # run() and a later run() call (or a restored twin) re-enters
        # at the same op.  Frames are mutated in place, so the local
        # alias inside run() needs no write-back; the pc does.
        self._frames: list = []
        self._pc = 0

    # ------------------------------------------------------------------
    # blocking primitives (the buffer-manager protocol)
    # ------------------------------------------------------------------

    def _ensure_closed(self, node: BufferNode) -> None:
        advance = self._projector.advance
        while not node.closed and not node.purged:
            if not advance():
                return

    def _next_child(self, node: BufferNode, after_seq: int, predicate):
        advance = self._projector.advance
        while True:
            child = node.next_child_after(after_seq, predicate)
            if child is not None:
                return child
            if node.closed or node.purged:
                return None
            if not advance():
                return None

    def _ctx(self, ref) -> BufferNode:
        return self._buffer.root if ref is None else self._slots[ref]

    # ------------------------------------------------------------------
    # the dispatch loop
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Execute the program to completion.

        A :class:`FreezeSignal` raised by a blocking primitive unwinds
        the loop after committing the current ``pc``; calling ``run()``
        again re-executes that op from its start.  Every op blocks
        before it writes (probe-then-advance), so re-execution is
        byte-identical.
        """
        ops = self._program.ops
        n = len(ops)
        slots = self._slots
        writer = self._writer
        frames = self._frames
        pc = self._pc
        try:
            while pc < n:
                op = ops[pc]
                code = op[0]
                if code == OP_FOR_NEXT:
                    node = self._for_next(frames[-1])
                    if node is None:
                        frames.pop()
                        pc = op[2]
                        continue
                    slots[op[1]] = node
                elif code == OP_IF:
                    if not self._cond(op[1]):
                        pc = op[2]
                        continue
                elif code == OP_EMIT_RAW:
                    writer.raw(op[1])
                elif code == OP_JUMP:
                    pc = op[1]
                    continue
                elif code == OP_FOR_INIT:
                    frames.append(self._new_frame(op[1]))
                elif code == OP_OUTPUT_PATH:
                    self._output_path(op[1], op[2], op[3])
                elif code == OP_SIGNOFF:
                    self._signoff(op[1], op[2], op[3])
                elif code == OP_CONSTRUCT:
                    writer.start_element(op[1], self._resolve_attributes(op[2]))
                elif code == OP_EMIT_SCALAR:
                    value = slots[op[1]]
                    if isinstance(value, str):
                        writer.text(value)
                    else:
                        writer.text(format_number(value))
                elif code == OP_EMIT_AGG:
                    writer.text(format_number(self._aggregate(op[1])))
                elif code == OP_LET:
                    kind, payload = op[2]
                    slots[op[1]] = (
                        self._aggregate(payload) if kind == "agg" else payload
                    )
                elif code == OP_RAISE:
                    raise EvaluationError(op[1])
                else:  # pragma: no cover - compiler emits only known ops
                    raise EvaluationError(f"unknown opcode {code}")
                pc += 1
        except FreezeSignal:
            self._pc = pc
            raise
        self._pc = pc

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture the dispatch state for serialization.

        Only meaningful while the evaluator is frozen (unwound by a
        :class:`FreezeSignal`) or before/after a run.  Frames are
        rendered codec-neutral: each becomes a dict carrying the pc of
        the ``OP_FOR_INIT`` that created it plus the per-kind loop
        fields, so the spec tuple itself never needs serializing.
        """
        ops = self._program.ops
        frames = []
        for frame in self._frames:
            spec = frame[0]
            init_pc = next(
                i
                for i, op in enumerate(ops)
                if op[0] == OP_FOR_INIT and op[1] is spec
            )
            kind = spec[0]
            if kind == ITER_CHILD:
                frames.append(
                    {
                        "init_pc": init_pc,
                        "kind": "child",
                        "context": frame[1],
                        "last_seq": frame[2],
                        "matched": frame[3],
                        "done": frame[4],
                    }
                )
            elif kind == ITER_DESC:
                stack = frame[1]
                frames.append(
                    {
                        "init_pc": init_pc,
                        "kind": "desc",
                        "stack": (
                            None
                            if stack is None
                            else [(entry[0], entry[1]) for entry in stack]
                        ),
                        "matched": frame[2],
                        "done": frame[3],
                        "pending": frame[4],
                        "started": frame[5],
                    }
                )
            else:  # ITER_SELF
                frames.append(
                    {
                        "init_pc": init_pc,
                        "kind": "self",
                        "context": frame[1],
                        "done": frame[2],
                    }
                )
        return {"pc": self._pc, "slots": list(self._slots), "frames": frames}

    def restore_state(self, state: dict, resolve) -> None:
        """Rebuild dispatch state from :meth:`snapshot_state` output.

        ``resolve`` maps serialized integer node references back to
        live :class:`BufferNode` objects.  Slot values arrive with
        ``("node", ref)`` markers (a slot can also hold a plain int);
        frame node fields arrive as bare refs or ``None``.
        """
        ops = self._program.ops

        def _value(value):
            if isinstance(value, tuple) and len(value) == 2 and value[0] == "node":
                return resolve(value[1])
            return value

        def _node(ref):
            return None if ref is None else resolve(ref)

        self._pc = state["pc"]
        slots = [_value(value) for value in state["slots"]]
        if len(slots) != self._program.n_slots:
            raise ValueError(
                f"snapshot has {len(slots)} slots, plan expects "
                f"{self._program.n_slots}"
            )
        self._slots = slots
        frames: list = []
        for entry in state["frames"]:
            init_pc = entry["init_pc"]
            if not (0 <= init_pc < len(ops)) or ops[init_pc][0] != OP_FOR_INIT:
                raise ValueError(
                    f"frame init pc {init_pc} does not point at OP_FOR_INIT"
                )
            spec = ops[init_pc][1]
            kind = entry["kind"]
            if kind == "child":
                if spec[0] != ITER_CHILD:
                    raise ValueError("frame kind mismatch for child iterator")
                frames.append(
                    [
                        spec,
                        _node(entry["context"]),
                        entry["last_seq"],
                        entry["matched"],
                        entry["done"],
                    ]
                )
            elif kind == "desc":
                if spec[0] != ITER_DESC:
                    raise ValueError("frame kind mismatch for desc iterator")
                stack = entry["stack"]
                frames.append(
                    [
                        spec,
                        (
                            None
                            if stack is None
                            else [
                                [_node(node), seq] for node, seq in stack
                            ]
                        ),
                        entry["matched"],
                        entry["done"],
                        _node(entry["pending"]),
                        entry["started"],
                    ]
                )
            else:
                if spec[0] != ITER_SELF:
                    raise ValueError("frame kind mismatch for self iterator")
                frames.append([spec, _node(entry["context"]), entry["done"]])
        self._frames = frames

    # ------------------------------------------------------------------
    # for-loop frames
    # ------------------------------------------------------------------

    def _new_frame(self, spec) -> list:
        kind = spec[0]
        if kind == ITER_CHILD:
            # [spec, context, last_seq, matched, done]
            return [spec, self._ctx(spec[1]), 0, 0, False]
        if kind == ITER_DESC:
            # [spec, stack, matched, done, pending_push, started]
            return [spec, None, 0, False, None, False]
        # ITER_SELF: [spec, context, done]
        return [spec, self._ctx(spec[1]), False]

    def _for_next(self, frame) -> BufferNode | None:
        kind = frame[0][0]
        if kind == ITER_CHILD:
            return self._next_child_binding(frame)
        if kind == ITER_DESC:
            return self._next_descendant_binding(frame)
        # ITER_SELF
        if frame[2]:
            return None
        frame[2] = True
        context = frame[1]
        return context if frame[0][2](context) else None

    def _next_child_binding(self, frame) -> BufferNode | None:
        if frame[4]:  # positional match already yielded
            return None
        spec = frame[0]
        context = frame[1]
        pred = spec[2]
        position = spec[3]
        while True:
            child = self._next_child(context, frame[2], pred)
            if child is None:
                return None
            frame[2] = child.seq
            frame[3] += 1
            if position is None:
                return child
            if frame[3] == position:
                frame[4] = True
                return child

    def _next_descendant_binding(self, frame) -> BufferNode | None:
        if frame[3]:  # positional match already yielded
            return None
        spec = frame[0]
        pred = spec[2]
        position = spec[3]
        if not frame[5]:
            frame[5] = True
            context = self._ctx(spec[1])
            frame[1] = [[context, 0]]
            if (
                spec[4]
                and context.tag != "#document"
                and pred(context)
            ):
                frame[2] = 1
                if position is None:
                    return context
                if position == 1:
                    frame[3] = True
                    return context
        stack = frame[1]
        pending = frame[4]
        if pending is not None:
            frame[4] = None
            # the push the oracle performs after its yield resumes —
            # deferred so GC during the loop body is observed the same
            if pending.tag is not None and not pending.purged:
                stack.append([pending, 0])
        while stack:
            top = stack[-1]
            child = self._next_child(top[0], top[1], None)
            if child is None:
                stack.pop()
                continue
            top[1] = child.seq
            if pred(child):
                frame[2] += 1
                if position is None:
                    frame[4] = child
                    return child
                if frame[2] == position:
                    frame[3] = True
                    return child
            if child.tag is not None and not child.purged:
                stack.append([child, 0])
        return None

    # ------------------------------------------------------------------
    # conditions
    # ------------------------------------------------------------------

    def _cond(self, spec) -> bool:
        kind = spec[0]
        if kind == C_CMP:
            return self._comparison(spec)
        if kind == C_EXISTS:
            return self._exists(spec)
        if kind == C_AND:
            return self._cond(spec[1]) and self._cond(spec[2])
        if kind == C_OR:
            return self._cond(spec[1]) or self._cond(spec[2])
        if kind == C_NOT:
            return not self._cond(spec[1])
        if kind == C_TRUE:
            return True
        raise EvaluationError(spec[1])  # C_RAISE

    def _exists(self, spec) -> bool:
        """Lazy existence test: probe the buffer after every pulled
        token; stop at the first witness or when the context closes."""
        context = self._ctx(spec[1])
        steps = spec[2]
        attribute = spec[3]
        advance = self._projector.advance
        while True:
            if self._exists_in(context, steps, 0, attribute):
                return True
            if context.closed or context.purged:
                return False
            if not advance():
                return False

    def _exists_in(self, node, steps, index, attribute) -> bool:
        if index == len(steps):
            if attribute is None:
                return True
            return node.tag is not None and attribute in node.attributes
        step = steps[index]
        position = step[2]
        nth = 0
        for child in self._candidates(node, step):
            nth += 1
            if position is not None and nth < position:
                continue
            if self._exists_in(child, steps, index + 1, attribute):
                return True
            if position is not None:
                return False
        return False

    def _comparison(self, spec) -> bool:
        left = self._values(spec[2])
        if not left:
            return False
        right = self._values(spec[3])
        op = spec[1]
        for lv in left:
            for rv in right:
                if _compare(op, lv, rv):
                    return True
        return False

    def _values(self, spec) -> list:
        kind = spec[0]
        if kind == V_PATH:
            context = self._ctx(spec[1])
            self._ensure_closed(context)
            nodes = self._nodeset(context, spec[2])
            attribute = spec[3]
            if attribute is None:
                return [node.string_value() for node in nodes]
            return [
                node.attributes[attribute]
                for node in nodes
                if node.tag is not None and attribute in node.attributes
            ]
        if kind == V_LIT:
            return [spec[1]]
        if kind == V_SCALAR:
            return [self._slots[spec[1]]]
        if kind == V_AGG:
            return [self._aggregate(spec[1])]
        raise EvaluationError(spec[1])  # V_RAISE

    def _aggregate(self, spec):
        func = spec[0]
        if func is None:
            raise EvaluationError(spec[1])
        context = self._ctx(spec[1])
        self._ensure_closed(context)
        nodes = self._nodeset(context, spec[2])
        attribute = spec[3]
        if attribute is not None:
            values = [
                node.attributes[attribute]
                for node in nodes
                if node.tag is not None and attribute in node.attributes
            ]
        elif func == "count":
            return len(nodes)
        else:
            values = [node.string_value() for node in nodes]
        return compute_aggregate(func, values)

    # ------------------------------------------------------------------
    # buffer-local path evaluation
    # ------------------------------------------------------------------

    def _candidates(self, node: BufferNode, step):
        axis, pred, _position = step
        if node.tag is None:
            # Text nodes have no children, but the self-including axes
            # must still reach the node itself.
            if axis in (AX_SELF, AX_DOS) and pred(node):
                return iter((node,))
            return iter(())
        if axis == AX_CHILD:
            return (c for c in node.children if pred(c))
        if axis == AX_DESC:
            return (c for c in _descendants(node) if pred(c))
        if axis == AX_DOS:

            def _dos():
                if node.tag != "#document" and pred(node):
                    yield node
                for c in _descendants(node):
                    if pred(c):
                        yield c

            return _dos()
        # AX_SELF
        return iter((node,) if pred(node) else ())

    def _frontier(self, context: BufferNode, steps) -> list[BufferNode]:
        """All match derivations of the steps from *context* (repeats
        kept) — the twin of ``PullEvaluator._eval_frontier``."""
        frontier = [context]
        for step in steps:
            position = step[2]
            next_frontier: list[BufferNode] = []
            for node in frontier:
                candidates = self._candidates(node, step)
                if position is not None:
                    nth = 0
                    for child in candidates:
                        nth += 1
                        if nth == position:
                            next_frontier.append(child)
                            break
                else:
                    next_frontier.extend(candidates)
            frontier = next_frontier
            if not frontier:
                break
        return frontier

    def _nodeset(self, context: BufferNode, steps) -> list[BufferNode]:
        """Duplicate-free document-order evaluation of the steps."""
        if not steps:
            return [context]
        seen: set[int] = set()
        unique: list[BufferNode] = []
        for node in self._frontier(context, steps):
            if id(node) not in seen:
                seen.add(id(node))
                unique.append(node)
        unique.sort(key=lambda node: node.seq)
        return unique

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------

    def _output_path(self, ctx, steps, attribute) -> None:
        context = self._ctx(ctx)
        self._ensure_closed(context)
        nodes = self._nodeset(context, steps)
        writer = self._writer
        if attribute is not None:
            for node in nodes:
                if node.tag is not None and attribute in node.attributes:
                    writer.text(node.attributes[attribute])
            return
        for node in nodes:
            _write_buffer_node(writer, node)

    def _resolve_attributes(self, specs) -> list[tuple[str, str]]:
        resolved = []
        for name, kind, payload in specs:
            if kind == A_AGG:
                value = format_number(self._aggregate(payload))
            elif kind == A_PATH:
                value = " ".join(str(v) for v in self._values(payload))
            else:
                value = payload
            resolved.append((name, value))
        return resolved

    # ------------------------------------------------------------------
    # signOff + garbage collection
    # ------------------------------------------------------------------

    def _signoff(self, ctx, steps, role) -> None:
        if not self._gc_enabled:
            return
        context = self._ctx(ctx)
        # Pull the context to its end tag first: all role instances the
        # matcher will ever assign below it are then in the buffer, so
        # the removal below is exhaustive (DESIGN.md §3.4).
        self._ensure_closed(context)
        if context.purged:
            return
        remove_role = self._buffer.remove_role
        for node in self._frontier(context, steps):
            remove_role(node, role)
