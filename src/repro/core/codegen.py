"""Per-plan generated-code kernels: the hot loops as specialized source.

PRs 3-5 compiled the pipeline into *table-driven* interpreters: the
projector walks a memoized lazy-DFA table and the evaluator dispatches
a flat operator program.  Both still pay, on every single token, for
work that is **constant for a given plan** — the memo-dict lookup and
entry unpacking in the projector, the opcode fetch/decode loop in the
VM.  This module removes that residue by *generating Python source*
specialized to one plan, ``compile()``/``exec()``-ing it exactly once
at plan-compile time, and caching the resulting kernels on the
:class:`~repro.core.plan.QueryPlan` next to ``dfa``/``program`` (so
the plan cache's single-flight and eviction rules cover them for
free).  The idea is the classic grammar→generated-parser move (cf. the
generated XPath parser in twisted's ``xpathparser.g``), applied to the
paper's compile-once/stream-many architecture.

**Kernel A — the projector** (:func:`generate_projector_kernel`): the
plan's projection paths mention a closed set of tag names, so the DFA
reachable over those tags is finite and computable at generation time.
The generator pre-warms the shared :class:`~repro.core.matcher.PathDFA`
memo over exactly that tag set and emits an ``advance()`` closure whose
state dispatch is an if/elif chain over the warmed states with every
transition — child state, parent adjustment, role counts, and crucially
the *skip-subtree decision* — baked in as constants.  Unseen
``(state, tag)`` pairs fall through to the shared memo dicts (and the
lazy NFA derivation on a memo miss), so the generated code stays valid
as the memo grows at runtime: baked constants never change because memo
entries are derived deterministically from the immutable path set and
are append-only (DESIGN.md §9's logical-immutability argument).

**Kernel B — the evaluator** (:func:`generate_evaluator_kernel`): the
flat op tuple of :class:`~repro.core.program.OperatorProgram` came out
of a structured compiler, so its jump graph is reducible by
construction.  A small decompiler re-discovers the ``for``/``if``
structure and emits straight-line Python — loops as ``while``, loop
cursors and bound nodes as locals, pre-escaped constant fragments as
interned string constants — while delegating the blocking-pull
semantics (``_next_child``, ``_output_path``, ``_signoff``, …) to the
very same :class:`~repro.core.program.CompiledEvaluator` methods the
VM uses, bound once as locals.  Opcode dispatch, pc bookkeeping and
frame allocation disappear; semantics cannot drift because the
primitives are shared.

**Kernel C — the fused lexer front-end**
(:func:`generate_lexer_kernel`): the deepest fusion of the ladder.
Kernels A and B still pull one event per token through the lexer's
per-event scan; Kernel C instead feeds the projector from
:meth:`~repro.xmlio.lexer_bytes.ByteXmlLexer.project_into` — the
lexer's batch loop (C-accelerated when available) with the plan's
closed tag alphabet fused into the scan, so a start tag whose name
the DFA can never match stops the batch *before its subtree is
tokenized* and is consumed by one bulk ``skip_subtree``.  Generation
certifies the alphabet against the oracle NFA (a sentinel tag must be
dead, role-free and parent-neutral in every reachable state) and
declines plans with wildcard/``node()`` element tests or descendant
self-loops, whose skips cannot be decided by name alone.

All kernels are *optional tiers*: any generation failure (or a plan
shape outside the generator's reach) yields ``None`` and the engine
silently runs the table-driven kernels instead — the fallback ladder
is codegen → tables → interpreter, each level a byte-identical oracle
for the one above (enforced by the differential suites).

This module is the **only** place in the repository allowed to call
``exec``/``compile`` (a lint rule and a test pin that down).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.buffer import Buffer, BufferNode
from repro.core.evaluator import EvaluationError, format_number
from repro.core.matcher import PathDFA
from repro.core.program import (
    C_CMP,
    C_EXISTS,
    C_TRUE,
    CompiledEvaluator,
    ITER_CHILD,
    OP_CONSTRUCT,
    OP_EMIT_AGG,
    OP_EMIT_RAW,
    OP_EMIT_SCALAR,
    OP_FOR_INIT,
    OP_FOR_NEXT,
    OP_IF,
    OP_JUMP,
    OP_LET,
    OP_OUTPUT_PATH,
    OP_RAISE,
    OP_SIGNOFF,
    OperatorProgram,
)
from repro.core.stats import BufferStats

__all__ = [
    "CodegenError",
    "CodegenEvaluator",
    "EvaluatorKernel",
    "GeneratedStreamProjector",
    "LexerKernel",
    "PlanKernels",
    "ProjectorKernel",
    "generate_evaluator_kernel",
    "generate_lexer_kernel",
    "generate_plan_kernels",
    "generate_projector_kernel",
]

#: Baked dispatch stays readable (and the if/elif chains short) only
#: while the warmed state space is small; plans whose projection paths
#: reach more states than this keep the warmed memo but dispatch every
#: state through the generic fall-through branch.
MAX_BAKED_STATES = 48


class CodegenError(Exception):
    """The plan contains a shape this generator cannot specialize; the
    caller falls back to the table-driven kernel (never an error)."""


# ---------------------------------------------------------------------------
# kernel containers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProjectorKernel:
    """One generated projector ``advance`` loop, plan-owned.

    ``factory(projector) -> (advance, run_to_end)`` binds the generated
    closure to one session's mutable runtime state; ``source`` is the
    exact text that was compiled (observability: the server STATS frame
    reports the footprint, and the differential tests print it on
    mismatch).  The kernel is only valid against ``dfa`` — the memo
    dicts and transition constants of that specific object are baked
    into the source.
    """

    factory: object
    source: str
    dfa: PathDFA
    baked_states: int
    baked_transitions: int


@dataclass(frozen=True)
class EvaluatorKernel:
    """One generated straight-line ``run`` function, plan-owned.

    ``run_fn(evaluator)`` executes the unrolled program over a
    :class:`CodegenEvaluator` (which supplies the shared blocking-pull
    primitives); ``source`` is the compiled text.
    """

    run_fn: object
    source: str
    program: OperatorProgram


@dataclass(frozen=True)
class LexerKernel:
    """One generated fused lexer front-end (Kernel C), plan-owned.

    The factory has the same ``factory(projector) -> (advance,
    run_to_end)`` shape as :class:`ProjectorKernel`, so it binds
    through the same :class:`GeneratedStreamProjector`; the difference
    is *input*: instead of pulling one event per ``advance()`` through
    ``next_event``, the generated loop batch-tokenizes through
    :meth:`~repro.xmlio.lexer_bytes.ByteXmlLexer.project_into` with the
    plan's closed tag alphabet (``live_tags``) fused into the scan —
    tag names the DFA can never match stop the batch *before* their
    subtrees are tokenized and go straight to the bulk
    ``skip_subtree`` path.  Generation certifies that fusion with the
    oracle NFA (see :func:`generate_lexer_kernel`): ``certified=True``
    means an out-of-alphabet tag is provably dead in every reachable
    state and the loop skips it without consulting the DFA;
    ``certified=False`` (e.g. a subtree-copy role ending in
    ``descendant-or-self::node()``) keeps the batch fusion but routes
    every skip decision through the shared DFA dispatch.
    ``probed_states`` is how many reachable states the probe proved
    fusible.
    """

    factory: object
    source: str
    dfa: PathDFA
    live_tags: tuple
    probed_states: int
    certified: bool = True


@dataclass(frozen=True)
class PlanKernels:
    """The generated kernels of one plan (any side may be ``None``
    when generation declined; the engine then uses the table kernel for
    that side)."""

    projector: ProjectorKernel | None
    evaluator: EvaluatorKernel | None
    lexer: "LexerKernel | None" = None

    @property
    def kernel_count(self) -> int:
        return (
            (self.projector is not None)
            + (self.evaluator is not None)
            + (self.lexer is not None)
        )

    @property
    def source_chars(self) -> int:
        total = 0
        if self.projector is not None:
            total += len(self.projector.source)
        if self.evaluator is not None:
            total += len(self.evaluator.source)
        if self.lexer is not None:
            total += len(self.lexer.source)
        return total


# ---------------------------------------------------------------------------
# shared emission plumbing
# ---------------------------------------------------------------------------


class _SourceWriter:
    """Indentation-safe line accumulator for generated source.

    The one prototype bug this generator ever had was a hand-managed
    indent placing a dispatch outside its guarding branch; all emission
    therefore goes through explicit ``depth`` arguments.
    """

    def __init__(self):
        self._lines: list[str] = []

    def line(self, depth: int, text: str) -> None:
        self._lines.append("    " * depth + text if text else "")

    def lines(self, depth: int, texts) -> None:
        for text in texts:
            self.line(depth, text)

    def source(self) -> str:
        return "\n".join(self._lines) + "\n"


class _Constants:
    """Registry of objects the generated source references by name.

    Constants land in the exec namespace, so the generated code shares
    the *same* dict/tuple/predicate objects the table kernels use —
    role-count dicts handed to ``Buffer.add_roles`` are identical
    objects either way.
    """

    def __init__(self, prefix: str):
        self._prefix = prefix
        self.namespace: dict = {}
        self._by_id: dict[int, str] = {}

    def name_for(self, value) -> str:
        key = id(value)
        name = self._by_id.get(key)
        if name is None:
            name = f"{self._prefix}{len(self._by_id)}"
            self._by_id[key] = name
            self.namespace[name] = value
        return name


def _compile_namespace(source: str, filename: str, namespace: dict) -> dict:
    """``compile`` + ``exec`` the generated module once; returns the
    populated namespace.  The only exec/compile site in the repo."""
    code = compile(source, filename, "exec")
    exec(code, namespace)  # noqa: S102 - the codegen module's one job
    return namespace


# ---------------------------------------------------------------------------
# Kernel A: the generated projector
# ---------------------------------------------------------------------------


def _projection_tags(analysis) -> list[str]:
    """All tag names the plan's projection paths can ever match by
    name — the closed tag alphabet the DFA is pre-warmed over."""
    tags: set[str] = set()
    for role in getattr(analysis, "roles", ()):
        path = getattr(role, "path", None)
        if path is None:
            continue
        for step in path.steps:
            test = step.test
            if getattr(test, "kind", None) == "name" and test.name:
                tags.add(test.name)
    return sorted(tags)


def _warm_dfa(dfa: PathDFA, tags: list[str]) -> list[int]:
    """Drive the lazy DFA over every warmed ``(state, tag)`` pair until
    closure; returns the live states reachable over the tag alphabet
    (document order of discovery, start state first)."""
    seen: list[int] = [dfa.start]
    seen_set = {dfa.start, PathDFA.dead}
    index = 0
    while index < len(seen):
        state = seen[index]
        index += 1
        dfa.text(state)
        for tag in tags:
            child, parent, _counts = dfa.element(state, tag)
            for nxt in (child, parent):
                if nxt not in seen_set:
                    seen_set.add(nxt)
                    seen.append(nxt)
        if len(seen) > 4 * MAX_BAKED_STATES:
            # Pathological closure (deep descendant interleavings):
            # keep the memo warm but stop enumerating; dispatch will be
            # generic for the tail.
            break
    return seen


_PROJ_STATS_LINES = (
    "stats.tokens += 1",
    "lc = buffer.live_count",
    "if lc > stats.watermark:",
    "    stats.watermark = lc",
    "if stats.record_series:",
    "    series.append(lc)",
)

_PROJ_SKIP_LINES = (
    "cnt = skip_subtree()",
    "if cnt > 0:",
    "    stats.tokens += cnt",
    "    lc = buffer.live_count",
    "    if lc > stats.watermark:",
    "        stats.watermark = lc",
    "    if stats.record_series:",
    "        series.extend([lc] * cnt)",
)


def _emit_baked_start(w: _SourceWriter, d: int, state: int, entry: tuple,
                      consts: _Constants) -> None:
    """The start-event body for one baked transition: every decision —
    parent adjustment, materialization, skip-vs-descend — resolved at
    generation time."""
    child, parent, counts = entry
    if parent != state:
        w.line(d, f"states[-1] = {parent}")
    if counts is None and not child:
        # The hottest path of a selective plan: a fully irrelevant
        # subtree.  One fused skip, single live-count read (no buffer
        # mutation can happen in between).
        w.lines(d, (
            "stats.tokens += 1",
            "stats.subtrees_skipped += 1",
            "cnt = skip_subtree()",
            "stats.tokens += cnt",
            "lc = buffer.live_count",
            "if lc > stats.watermark:",
            "    stats.watermark = lc",
            "if stats.record_series:",
            "    series.append(lc)",
            "    if cnt > 0:",
            "        series.extend([lc] * cnt)",
            "return True",
        ))
        return
    if counts is not None:
        counts_name = consts.name_for(counts)
        w.lines(d, (
            "top = len(nodes) - 1",
            "pnode = nodes[top]",
            "if pnode is None:",
            "    pnode = materialize(top)",
            "node = new_element(pnode, name, event[2])",
            f"add_roles(node, {counts_name})",
        ))
    w.lines(d, _PROJ_STATS_LINES)
    if child:
        w.lines(d, (
            "tags_append(name)",
            "attrs_append(event[2])",
            f"states_append({child})",
            "nodes_append(node)" if counts is not None else "nodes_append(None)",
        ))
    else:
        # counts is not None here (the None case returned above): a
        # buffered leaf whose content cannot match — skipped but not
        # counted as an irrelevant subtree, and closed afterwards.
        w.lines(d, _PROJ_SKIP_LINES)
        w.line(d, "close(node)")
    w.line(d, "return True")


def _emit_baked_text(w: _SourceWriter, d: int, state: int, entry: tuple,
                     consts: _Constants) -> None:
    """The text-event body for one baked state."""
    counts, parent = entry
    if counts is not None:
        counts_name = consts.name_for(counts)
        w.lines(d, (
            "top = len(states) - 1",
            "pnode = nodes[top]",
            "if pnode is None:",
            "    pnode = materialize(top)",
            "node = new_text(pnode, event[3])",
            f"add_roles(node, {counts_name})",
        ))
    if parent != state:
        w.line(d, f"states[-1] = {parent}")
    w.lines(d, _PROJ_STATS_LINES)
    w.line(d, "return True")


def generate_projector_kernel(dfa: PathDFA, analysis) -> ProjectorKernel:
    """Generate, compile and return Kernel A for one plan.

    Raises:
        CodegenError: the DFA/analysis shape cannot be specialized.
    """
    if dfa is None:
        raise CodegenError("plan has no DFA")
    tags = _projection_tags(analysis)
    warm = _warm_dfa(dfa, tags)
    baked_states = [s for s in warm if s != PathDFA.dead][:MAX_BAKED_STATES]
    consts = _Constants("K")
    # Snapshot the warmed transitions now: entries added later (unseen
    # document tags) are served by the fall-through memo lookup.  The
    # snapshot is taken per state *before* emission so the baked chain
    # and the bound memo dict can never disagree.
    element_snapshot = {s: sorted(dfa._element_memo[s].items()) for s in baked_states}
    text_snapshot = {s: dfa._text_memo[s] for s in baked_states}
    baked_transitions = sum(len(v) for v in element_snapshot.values())

    w = _SourceWriter()
    w.lines(0, (
        "def make_advance(P):",
        "    lexer = P._lexer",
        "    next_event = lexer.next_event",
        "    skip_subtree = lexer.skip_subtree",
        "    buffer = P._buffer",
        "    stats = P._stats",
        "    series = stats.series",
        "    new_element = buffer.new_element",
        "    new_text = buffer.new_text",
        "    add_roles = buffer.add_roles",
        "    close = buffer.close",
        "    compute_element = DFA.compute_element",
        "    compute_text = DFA.text",
        "    tags = P._tags",
        "    attrs = P._attrs",
        "    states = P._states",
        "    nodes = P._nodes",
        "    tags_append = tags.append",
        "    attrs_append = attrs.append",
        "    states_append = states.append",
        "    nodes_append = nodes.append",
        "    tags_pop = tags.pop",
        "    attrs_pop = attrs.pop",
        "    states_pop = states.pop",
        "    nodes_pop = nodes.pop",
        "",
        "    def materialize(index):",
        "        depth = index",
        "        while nodes[depth] is None:",
        "            depth -= 1",
        "        while depth < index:",
        "            depth += 1",
        "            nodes[depth] = new_element(nodes[depth - 1], tags[depth], attrs[depth])",
        "        return nodes[index]",
        "",
        "    def advance():",
        "        if P.exhausted:",
        "            return False",
        "        event = next_event()",
        "        if event is None:",
        "            P.exhausted = True",
        "            close(buffer.root)",
        "            return False",
        "        kind = event[0]",
        "        if kind == 0:",
        "            name = event[1]",
        "            state = states[-1]",
    ))
    # -- start events: baked per-state/tag chains, generic fall-through
    d = 3  # inside `if kind == 0:`
    keyword = "if"
    for state in baked_states:
        transitions = element_snapshot[state]
        w.line(d, f"{keyword} state == {state}:")
        keyword = "elif"
        inner = "if"
        for tag, entry in transitions:
            w.line(d + 1, f"{inner} name == {tag!r}:")
            inner = "elif"
            # The end-tag scan of the bytes lexer does not intern, so
            # tags compare by value (==), never identity.
            _emit_baked_start(w, d + 2, state, entry, consts)
        memo_name = consts.name_for(dfa._element_memo[state])
        if inner == "if":  # no transitions baked for this state
            w.line(d + 1, f"entry = {memo_name}.get(name)")
        else:
            w.line(d + 1, "else:")
            w.line(d + 2, f"entry = {memo_name}.get(name)")
    if keyword == "if":  # no baked states at all
        w.line(d, "entry = EM[state].get(name)")
    else:
        w.line(d, "else:")
        w.line(d + 1, "entry = EM[state].get(name)")
    w.lines(d, (
        "if entry is None:",
        "    entry = compute_element(state, name)",
        "child, parent, counts = entry",
        "if parent != state:",
        "    states[-1] = parent",
        "if counts is not None:",
        "    top = len(nodes) - 1",
        "    pnode = nodes[top]",
        "    if pnode is None:",
        "        pnode = materialize(top)",
        "    node = new_element(pnode, name, event[2])",
        "    add_roles(node, counts)",
        "else:",
        "    node = None",
    ))
    w.lines(d, _PROJ_STATS_LINES)
    w.lines(d, (
        "if child:",
        "    tags_append(name)",
        "    attrs_append(event[2])",
        "    states_append(child)",
        "    nodes_append(node)",
        "else:",
        "    if node is None:",
        "        stats.subtrees_skipped += 1",
    ))
    w.lines(d + 1, _PROJ_SKIP_LINES)
    w.lines(d + 1, (
        "if node is not None:",
        "    close(node)",
    ))
    # -- end events
    w.line(2, "elif kind == 1:")
    w.lines(3, (
        "tags_pop()",
        "attrs_pop()",
        "states_pop()",
        "node = nodes_pop()",
        "if node is not None:",
        "    close(node)",
    ))
    w.lines(3, _PROJ_STATS_LINES)
    # -- text events: baked per-state bodies, generic fall-through
    w.line(2, "else:")
    w.line(3, "state = states[-1]")
    keyword = "if"
    for state in baked_states:
        entry = text_snapshot[state]
        if entry is None:  # pragma: no cover - warm always fills it
            continue
        w.line(3, f"{keyword} state == {state}:")
        keyword = "elif"
        _emit_baked_text(w, 4, state, entry, consts)
    w.lines(3, (
        "entry = TM[state]",
        "if entry is None:",
        "    entry = compute_text(state)",
        "counts, parent = entry",
        "if counts is not None:",
        "    top = len(states) - 1",
        "    pnode = nodes[top]",
        "    if pnode is None:",
        "        pnode = materialize(top)",
        "    node = new_text(pnode, event[3])",
        "    add_roles(node, counts)",
        "if parent != state:",
        "    states[-1] = parent",
    ))
    w.lines(3, _PROJ_STATS_LINES)
    w.line(2, "return True")
    w.lines(0, (
        "",
        "    def run_to_end():",
        "        while advance():",
        "            pass",
        "",
        "    return advance, run_to_end",
    ))

    source = w.source()
    namespace = dict(consts.namespace)
    namespace["DFA"] = dfa
    namespace["EM"] = dfa._element_memo
    namespace["TM"] = dfa._text_memo
    try:
        module = _compile_namespace(source, "<gcx-projector-kernel>", namespace)
    except SyntaxError as exc:  # pragma: no cover - generator bug guard
        raise CodegenError(f"generated projector source invalid: {exc}") from exc
    return ProjectorKernel(
        factory=module["make_advance"],
        source=source,
        dfa=dfa,
        baked_states=len(baked_states),
        baked_transitions=baked_transitions,
    )


class GeneratedStreamProjector:
    """Kernel A bound to one stream: the generated ``advance`` closure
    over the same four-parallel-list stack as
    :class:`~repro.core.projector.CompiledStreamProjector` (whose
    observable behaviour it reproduces byte for byte)."""

    def __init__(
        self,
        kernel: ProjectorKernel,
        lexer,
        dfa: PathDFA,
        buffer: Buffer,
        stats: BufferStats | None = None,
    ):
        if dfa is not kernel.dfa:
            raise CodegenError("kernel was generated for a different DFA")
        self._lexer = lexer
        self._buffer = buffer
        self._stats = stats if stats is not None else buffer.stats
        self._tags: list = [None]
        self._attrs: list = [None]
        self._states: list[int] = [dfa.start]
        self._nodes: list[BufferNode | None] = [buffer.root]
        if dfa.start_roles:
            buffer.add_roles(buffer.root, dfa.start_roles)
        self.exhausted = False
        self.advance, self.run_to_end = kernel.factory(self)


# ---------------------------------------------------------------------------
# Kernel C: the generated fused lexer front-end
# ---------------------------------------------------------------------------

#: The certification probe tag: NUL can never start an XML name, so no
#: document tag collides with it, and pushing it through the oracle NFA
#: answers "what happens to a tag name outside the plan's alphabet?"
#: for one state in one call.
_SENTINEL_TAG = "\x00"

#: Events per :meth:`project_into` refill.  Large enough to amortize
#: the call across a C-scanned run, small enough that a live batch
#: never holds output hostage for long (the lexer additionally returns
#: early rather than block mid-batch, so this is a ceiling, not a
#: latency floor).
_LEXER_BATCH = 512


def _probe_fusible(dfa: PathDFA, state: int) -> bool:
    """Is a tag name outside the plan's alphabet fully inert in
    *state*?  The :data:`_SENTINEL_TAG` is pushed through the oracle
    NFA on freshly materialized instances (no shared memo is touched):
    inert means it binds no roles, enters the dead state, and leaves
    the parent state unchanged.  Wildcard and ``node()`` element tests
    match the sentinel and fail the probe; descendant self-loops keep
    it live and fail the probe — exactly the situations where a skip
    cannot be decided by name alone.
    """
    instances = dfa._instances(state)
    child_instances, counts = dfa.matcher.enter_element(
        instances, _SENTINEL_TAG
    )
    if counts:
        return False
    if dfa._canonical(child_instances):
        return False
    return dfa._canonical(instances) == dfa._states[state]


def _certify_live_alphabet(dfa: PathDFA, tags: list[str]) -> tuple:
    """Decide how much of the fused-skip decision can be baked;
    returns ``(certified, fusible_states)``.

    The state closure is walked over the alphabet *including*
    text-driven parent adjustments (unlike :func:`_warm_dfa` — a fused
    run can sit in a state only reachable through a text event
    exhausting a ``[1]`` step), and every reachable state is probed
    with :func:`_probe_fusible`.  ``certified=True`` means the probe
    passed in *every* closure state — an out-of-alphabet tag is dead
    everywhere, so the generated loop may bulk-skip it without
    touching the DFA at all.  ``certified=False`` (some state keeps
    unknown tags live, e.g. a trailing ``descendant-or-self::node()``
    subtree-copy role, or the closure is too large to enumerate) still
    permits fusion — the batch boundary at an unknown tag is harmless
    — but the skip decision must go through the shared DFA dispatch
    per tag.

    Raises:
        CodegenError: even the start state keeps unknown tags live
            (wildcard or descendant steps at the root): fusion could
            never skip anything, so the plan declines to Kernel A.
    """
    if not _probe_fusible(dfa, dfa.start):
        raise CodegenError(
            "unknown tags stay live at the root (wildcard/descendant)"
        )
    seen: list[int] = [dfa.start]
    seen_set = {dfa.start, PathDFA.dead}
    index = 0
    while index < len(seen):
        state = seen[index]
        index += 1
        nxt = [dfa.text(state)[1]]
        for tag in tags:
            child, parent, _counts = dfa.element(state, tag)
            nxt.append(child)
            nxt.append(parent)
        for candidate in nxt:
            if candidate not in seen_set:
                seen_set.add(candidate)
                seen.append(candidate)
        if len(seen) > 4 * MAX_BAKED_STATES:
            # pathological closure: fusion stays available, but the
            # certificate cannot be enumerated — dispatch generically
            return (False, 1)
    fusible = sum(1 for state in seen if _probe_fusible(dfa, state))
    return (fusible == len(seen), fusible)


def generate_lexer_kernel(dfa: PathDFA, analysis) -> LexerKernel:
    """Generate, compile and return Kernel C for one plan.

    The generated ``advance`` replaces the per-event ``next_event``
    pull of the projector kernels with a queue refilled by
    ``project_into(queue, LIVE, batch)``: the lexer batch-tokenizes —
    through the C scanner when available — and stops right behind any
    start tag whose name is outside the plan's alphabet, which the
    loop then consumes with one bulk ``skip_subtree`` (no event
    tuples, no DFA transition, no memo interning for dead names).
    In-queue events dispatch through the same shared-memo transition
    logic as :class:`~repro.core.projector.CompiledStreamProjector`,
    so outputs, statistics and errors stay byte-identical; the one
    subtlety is a skip decided for an *in-queue* start (a live-alphabet
    tag entering the dead state), whose subtree may already be partly
    tokenized — the loop drains those queued events first and
    bulk-skips only the still-unread frontier, one open element at a
    time.

    When :func:`_certify_live_alphabet` certifies the whole closure,
    the flagged batch tail (the out-of-alphabet start) additionally
    takes a baked fast path: no DFA transition, no memo interning for
    the dead name.  When the certificate is partial — some state keeps
    unknown tags live, e.g. a subtree-copy role ending in
    ``descendant-or-self::node()`` — the tail start dispatches through
    the shared DFA like any other event, which decides dead-vs-live
    per state; the batch boundary itself is always sound.

    Raises:
        CodegenError: the plan cannot profit from fusion at all — no
            named projection tags, or unknown tags stay live even at
            the root (wildcard steps, descendant axes from the root).
    """
    if dfa is None:
        raise CodegenError("plan has no DFA")
    tags = _projection_tags(analysis)
    if not tags:
        raise CodegenError("no named projection tags to fuse over")
    certified, probed = _certify_live_alphabet(dfa, tags)

    consts = _Constants("L")
    live = dict.fromkeys(tags)
    live_name = consts.name_for(live)
    w = _SourceWriter()
    w.lines(0, (
        "def make_advance(P):",
        "    lexer = P._lexer",
        "    project_into = lexer.project_into",
        "    skip_subtree = lexer.skip_subtree",
        "    buffer = P._buffer",
        "    stats = P._stats",
        "    series = stats.series",
        "    new_element = buffer.new_element",
        "    new_text = buffer.new_text",
        "    add_roles = buffer.add_roles",
        "    close = buffer.close",
        "    compute_element = DFA.compute_element",
        "    compute_text = DFA.text",
        "    tags = P._tags",
        "    attrs = P._attrs",
        "    states = P._states",
        "    nodes = P._nodes",
        "    tags_append = tags.append",
        "    attrs_append = attrs.append",
        "    states_append = states.append",
        "    nodes_append = nodes.append",
        "    tags_pop = tags.pop",
        "    attrs_pop = attrs.pop",
        "    states_pop = states.pop",
        "    nodes_pop = nodes.pop",
        "    queue = []",
        "    qi = 0",
        "    qlen = 0",
        "    tail_dead = False",
        "    pending_error = None",
        "",
        "    def materialize(index):",
        "        depth = index",
        "        while nodes[depth] is None:",
        "            depth -= 1",
        "        while depth < index:",
        "            depth += 1",
        "            nodes[depth] = new_element(nodes[depth - 1], tags[depth], attrs[depth])",
        "        return nodes[index]",
        "",
        "    def advance():",
        "        nonlocal qi, qlen, tail_dead, pending_error",
        "        if qi >= qlen:",
        "            if P.exhausted:",
        "                return False",
        "            if pending_error is not None:",
        "                # tokenize-ahead hit this error while earlier",
        "                # events were still queued; those have all been",
        "                # dispatched now, so the error surfaces on the",
        "                # advance() call the per-event path would use",
        "                error = pending_error",
        "                pending_error = None",
        "                raise error",
        "            del queue[:]",
        "            try:",
        f"                got = project_into(queue, {live_name}, {_LEXER_BATCH})",
        "            except Exception as error:",
        "                if not queue:",
        "                    raise",
        "                pending_error = error",
        "                got = len(queue)",
        "            if got == 0:",
        "                P.exhausted = True",
        "                close(buffer.root)",
        "                return False",
        "            if got < 0:",
        "                tail_dead = True",
        "                qlen = -got",
        "            else:",
        "                tail_dead = False",
        "                qlen = got",
        "            qi = 0",
        "        event = queue[qi]",
        "        qi += 1",
        "        kind = event[0]",
        "        if kind == 0:",
        "            name = event[1]",
    ))
    if certified:
        w.lines(0, (
            "            if tail_dead and qi == qlen:",
            "                # the flagged tail: a start whose name is outside",
            "                # the certified alphabet — dead in every reachable",
            "                # state, parent unchanged, no roles; the cursor",
            "                # sits right behind the start tag",
            "                tail_dead = False",
            "                stats.tokens += 1",
            "                stats.subtrees_skipped += 1",
            "                cnt = skip_subtree()",
            "                stats.tokens += cnt",
            "                lc = buffer.live_count",
            "                if lc > stats.watermark:",
            "                    stats.watermark = lc",
            "                if stats.record_series:",
            "                    series.append(lc)",
            "                    if cnt > 0:",
            "                        series.extend([lc] * cnt)",
            "                return True",
        ))
    w.lines(0, (
        "            state = states[-1]",
        "            entry = EM[state].get(name)",
        "            if entry is None:",
        "                entry = compute_element(state, name)",
        "            child, parent, counts = entry",
        "            if parent != state:",
        "                states[-1] = parent",
        "            if counts is not None:",
        "                top = len(nodes) - 1",
        "                pnode = nodes[top]",
        "                if pnode is None:",
        "                    pnode = materialize(top)",
        "                node = new_element(pnode, name, event[2])",
        "                add_roles(node, counts)",
        "            else:",
        "                node = None",
        "            stats.tokens += 1",
        "            lc = buffer.live_count",
        "            if lc > stats.watermark:",
        "                stats.watermark = lc",
        "            if stats.record_series:",
        "                series.append(lc)",
        "            if child:",
        "                tags_append(name)",
        "                attrs_append(event[2])",
        "                states_append(child)",
        "                nodes_append(node)",
        "            else:",
        "                if node is None:",
        "                    stats.subtrees_skipped += 1",
        "                # a live-alphabet tag entering the dead state:",
        "                # its subtree may be partly tokenized into the",
        "                # queue already — drain those events, then skip",
        "                # the unread frontier one open element at a time",
        "                cnt = 0",
        "                depth = 1",
        "                while depth:",
        "                    if qi < qlen:",
        "                        ev = queue[qi]",
        "                        qi += 1",
        "                        k = ev[0]",
        "                        if k == 0:",
        "                            depth += 1",
        "                        elif k == 1:",
        "                            depth -= 1",
        "                        cnt += 1",
        "                    else:",
        "                        cnt += skip_subtree()",
        "                        depth -= 1",
        "                if cnt > 0:",
        "                    stats.tokens += cnt",
        "                    lc = buffer.live_count",
        "                    if lc > stats.watermark:",
        "                        stats.watermark = lc",
        "                    if stats.record_series:",
        "                        series.extend([lc] * cnt)",
        "                if node is not None:",
        "                    close(node)",
        "        elif kind == 1:",
        "            tags_pop()",
        "            attrs_pop()",
        "            states_pop()",
        "            node = nodes_pop()",
        "            if node is not None:",
        "                close(node)",
        "            stats.tokens += 1",
        "            lc = buffer.live_count",
        "            if lc > stats.watermark:",
        "                stats.watermark = lc",
        "            if stats.record_series:",
        "                series.append(lc)",
        "        else:",
        "            state = states[-1]",
        "            entry = TM[state]",
        "            if entry is None:",
        "                entry = compute_text(state)",
        "            counts, parent = entry",
        "            if counts is not None:",
        "                top = len(states) - 1",
        "                pnode = nodes[top]",
        "                if pnode is None:",
        "                    pnode = materialize(top)",
        "                node = new_text(pnode, event[3])",
        "                add_roles(node, counts)",
        "            if parent != state:",
        "                states[-1] = parent",
        "            stats.tokens += 1",
        "            lc = buffer.live_count",
        "            if lc > stats.watermark:",
        "                stats.watermark = lc",
        "            if stats.record_series:",
        "                series.append(lc)",
        "        return True",
        "",
        "    def run_to_end():",
        "        while advance():",
        "            pass",
        "",
        "    return advance, run_to_end",
    ))

    source = w.source()
    namespace = dict(consts.namespace)
    namespace["DFA"] = dfa
    namespace["EM"] = dfa._element_memo
    namespace["TM"] = dfa._text_memo
    try:
        module = _compile_namespace(source, "<gcx-lexer-kernel>", namespace)
    except SyntaxError as exc:  # pragma: no cover - generator bug guard
        raise CodegenError(f"generated lexer source invalid: {exc}") from exc
    return LexerKernel(
        factory=module["make_advance"],
        source=source,
        dfa=dfa,
        live_tags=tuple(tags),
        probed_states=probed,
        certified=certified,
    )


# ---------------------------------------------------------------------------
# Kernel B: the generated evaluator
# ---------------------------------------------------------------------------


def _expect_for(ops: tuple, pc: int, end: int) -> tuple:
    """Validate the compiler's canonical for-loop shape at *pc* and
    return ``(spec, slot, body_start, body_end, exit_pc)``."""
    init = ops[pc]
    if pc + 1 >= end:
        raise CodegenError("for-init at block end")
    nxt = ops[pc + 1]
    if nxt[0] != OP_FOR_NEXT:
        raise CodegenError("for-init not followed by for-next")
    exit_pc = nxt[2]
    if not (pc + 2 <= exit_pc - 1 <= end):
        raise CodegenError("for exit outside block")
    back = ops[exit_pc - 1]
    if back[0] != OP_JUMP or back[1] != pc + 1:
        raise CodegenError("for body does not jump back to its head")
    return init[1], nxt[1], pc + 2, exit_pc - 1, exit_pc


class _EvalEmitter:
    """Decompile the flat op tuple back into structure and emit it."""

    def __init__(self, program: OperatorProgram):
        self.program = program
        self.consts = _Constants("S")
        self.w = _SourceWriter()
        self._depth_counter = 0

    # -- expressions -------------------------------------------------------

    def _cond_expr(self, spec) -> str:
        kind = spec[0]
        if kind == C_CMP:
            return f"comparison({self.consts.name_for(spec)})"
        if kind == C_EXISTS:
            return f"exists({self.consts.name_for(spec)})"
        if kind == C_TRUE:
            return "True"
        return f"cond({self.consts.name_for(spec)})"

    def _ctx_expr(self, ctx) -> str:
        return "root" if ctx is None else f"slots[{ctx}]"

    # -- statements --------------------------------------------------------

    def _emit_simple(self, d: int, op: tuple) -> None:
        w = self.w
        code = op[0]
        if code == OP_EMIT_RAW:
            w.line(d, f"raw({self.consts.name_for(op[1])})")
        elif code == OP_OUTPUT_PATH:
            steps = self.consts.name_for(op[2])
            w.line(d, f"output_path({op[1]!r}, {steps}, {op[3]!r})")
        elif code == OP_SIGNOFF:
            steps = self.consts.name_for(op[2])
            w.line(d, f"signoff({op[1]!r}, {steps}, {op[3]!r})")
        elif code == OP_EMIT_SCALAR:
            w.line(d, f"_v = slots[{op[1]}]")
            w.line(d, "wtext(_v if isinstance(_v, str) else format_number(_v))")
        elif code == OP_EMIT_AGG:
            w.line(d, f"wtext(format_number(aggregate({self.consts.name_for(op[1])})))")
        elif code == OP_CONSTRUCT:
            specs = self.consts.name_for(op[2])
            w.line(d, f"start_element({op[1]!r}, resolve_attributes({specs}))")
        elif code == OP_LET:
            kind, payload = op[2]
            if kind == "agg":
                w.line(d, f"slots[{op[1]}] = aggregate({self.consts.name_for(payload)})")
            else:
                w.line(d, f"slots[{op[1]}] = {self.consts.name_for(payload)}")
        elif code == OP_RAISE:
            w.line(d, f"raise EvaluationError({op[1]!r})")
        else:
            raise CodegenError(f"unsupported opcode {code} in straight-line position")

    def _emit_for(self, d: int, spec, slot: int, body_start: int, body_end: int) -> None:
        w = self.w
        n = self._depth_counter
        self._depth_counter += 1
        if spec[0] == ITER_CHILD:
            pred = self.consts.name_for(spec[2])
            position = spec[3]
            w.line(d, f"_c{n} = {self._ctx_expr(spec[1])}")
            w.line(d, f"_s{n} = 0")
            if position is not None:
                w.line(d, f"_m{n} = 0")
            w.line(d, "while True:")
            w.line(d + 1, f"_n{n} = next_child(_c{n}, _s{n}, {pred})")
            w.line(d + 1, f"if _n{n} is None:")
            w.line(d + 2, "break")
            w.line(d + 1, f"_s{n} = _n{n}.seq")
            if position is not None:
                w.line(d + 1, f"_m{n} += 1")
                w.line(d + 1, f"if _m{n} != {position}:")
                w.line(d + 2, "continue")
            w.line(d + 1, f"slots[{slot}] = _n{n}")
            self._emit_block(d + 1, body_start, body_end)
            if position is not None:
                w.line(d + 1, "break")
        else:
            # Descendant / self iteration keeps the VM's frame helpers
            # (deferred-push GC semantics live there); the unrolling win
            # is the removed dispatch, not the frame.
            frame_spec = self.consts.name_for(spec)
            w.line(d, f"_f{n} = new_frame({frame_spec})")
            w.line(d, "while True:")
            w.line(d + 1, f"_n{n} = for_next(_f{n})")
            w.line(d + 1, f"if _n{n} is None:")
            w.line(d + 2, "break")
            w.line(d + 1, f"slots[{slot}] = _n{n}")
            self._emit_block(d + 1, body_start, body_end)

    def _emit_if(self, d: int, pc: int, end: int) -> int:
        ops = self.program.ops
        op = ops[pc]
        else_pc = op[2]
        if not (pc < else_pc <= end):
            raise CodegenError("if target outside block")
        w = self.w
        cond = self._cond_expr(op[1])
        tail = else_pc - 1
        has_else = (
            tail > pc
            and ops[tail][0] == OP_JUMP
            and ops[tail][1] > tail  # forward: the then-block's skip
        )
        if has_else:
            end_pc = ops[tail][1]
            if end_pc > end:
                raise CodegenError("else target outside block")
            w.line(d, f"if {cond}:")
            self._emit_block(d + 1, pc + 1, tail)
            w.line(d, "else:")
            self._emit_block(d + 1, else_pc, end_pc)
            return end_pc
        w.line(d, f"if {cond}:")
        self._emit_block(d + 1, pc + 1, else_pc)
        return else_pc

    def _emit_block(self, d: int, start: int, end: int) -> None:
        ops = self.program.ops
        if start >= end:
            self.w.line(d, "pass")
            return
        pc = start
        while pc < end:
            code = ops[pc][0]
            if code == OP_FOR_INIT:
                spec, slot, body_start, body_end, exit_pc = _expect_for(ops, pc, end)
                self._emit_for(d, spec, slot, body_start, body_end)
                pc = exit_pc
            elif code == OP_IF:
                pc = self._emit_if(d, pc, end)
            elif code in (OP_FOR_NEXT, OP_JUMP):
                raise CodegenError(f"unstructured opcode {code} at pc {pc}")
            else:
                self._emit_simple(d, ops[pc])
                pc += 1

    def emit(self) -> str:
        w = self.w
        w.lines(0, (
            "def run(self):",
            "    slots = self._slots",
            "    writer = self._writer",
            "    raw = writer.raw",
            "    wtext = writer.text",
            "    start_element = writer.start_element",
            "    root = self._buffer.root",
            "    next_child = self._next_child",
            "    new_frame = self._new_frame",
            "    for_next = self._for_next",
            "    cond = self._cond",
            "    comparison = self._comparison",
            "    exists = self._exists",
            "    output_path = self._output_path",
            "    signoff = self._signoff",
            "    aggregate = self._aggregate",
            "    resolve_attributes = self._resolve_attributes",
        ))
        self._emit_block(1, 0, len(self.program.ops))
        return w.source()


def generate_evaluator_kernel(program: OperatorProgram) -> EvaluatorKernel:
    """Generate, compile and return Kernel B for one operator program.

    Raises:
        CodegenError: the op stream is outside the structured shape the
            decompiler understands (callers fall back to the VM).
    """
    if program is None:
        raise CodegenError("plan has no operator program")
    emitter = _EvalEmitter(program)
    source = emitter.emit()
    namespace = dict(emitter.consts.namespace)
    namespace["EvaluationError"] = EvaluationError
    namespace["format_number"] = format_number
    try:
        module = _compile_namespace(source, "<gcx-evaluator-kernel>", namespace)
    except SyntaxError as exc:  # pragma: no cover - generator bug guard
        raise CodegenError(f"generated evaluator source invalid: {exc}") from exc
    return EvaluatorKernel(run_fn=module["run"], source=source, program=program)


class CodegenEvaluator(CompiledEvaluator):
    """Kernel B bound to one run: the generated straight-line ``run``
    over the VM's own blocking-pull primitives (inherited), so the
    observable behaviour is byte-identical to
    :class:`~repro.core.program.CompiledEvaluator` by construction."""

    def __init__(self, kernel: EvaluatorKernel, program, projector, buffer,
                 writer, gc_enabled: bool = True):
        if program is not kernel.program:
            raise CodegenError("kernel was generated for a different program")
        super().__init__(program, projector, buffer, writer, gc_enabled)
        self._kernel_run = kernel.run_fn

    def run(self) -> None:
        self._kernel_run(self)


# ---------------------------------------------------------------------------
# plan-level entry point
# ---------------------------------------------------------------------------


def generate_plan_kernels(dfa, analysis, program) -> PlanKernels | None:
    """Generate both kernels for one plan, tolerating partial coverage.

    Called once per plan compile (inside the cache's single-flight, so
    N racing sessions trigger exactly one generation).  Any failure is
    a silent fallback to the table kernels — codegen is a pure
    optimisation tier, never a correctness risk.
    """
    projector = None
    evaluator = None
    lexer = None
    if dfa is not None:
        try:
            projector = generate_projector_kernel(dfa, analysis)
        except CodegenError:
            projector = None
        try:
            lexer = generate_lexer_kernel(dfa, analysis)
        except CodegenError:
            lexer = None
    if program is not None:
        try:
            evaluator = generate_evaluator_kernel(program)
        except CodegenError:
            evaluator = None
    if projector is None and evaluator is None and lexer is None:
        return None
    return PlanKernels(projector=projector, evaluator=evaluator, lexer=lexer)
