"""Versioned binary session snapshots (explicit format, no pickle).

The paper's bounded-buffer claim has an operational consequence: the
*entire* live state of a streaming session — lexer restart state,
projector stacks, VM loop frames, buffered nodes, undrained output —
is small at any chunk boundary, so it can be serialized cheaply and a
long-running session can survive a server restart or migrate between
workers.  This module is the single place that knows the byte layout;
components expose plain-dict ``snapshot_state()`` / ``restore_state()``
surfaces and stay ignorant of encodings.

Blob layout (DESIGN.md §16 has the full field table)::

    MAGIC "GCXS" | u16 format version | header | stats | buffer tree |
    lexer | projector | writer | evaluator | output backlog |
    input backlog | purged-node table

Every field is written explicitly with four primitives — unsigned
LEB128 varints (zigzag for signed), length-prefixed UTF-8 text,
length-prefixed raw bytes, and big-endian float64 — so there is no
object graph, no code execution on decode, and a truncated or
corrupted blob fails loudly.  A snapshot is *keyed*: the header
carries the canonical plan text plus a digest over the plan's role
table, and restore refuses — never misreads — a blob whose format
version or plan key does not match.

Buffer nodes are serialized by ``seq`` (globally unique arrival
numbers); the decoder rebuilds the live tree and a ``seq → node`` map,
and projector/evaluator node references resolve through it.  Evaluator
frames may legitimately reference *purged* nodes (a loop context the
GC reclaimed mid-iteration); those are recorded in a small side table
and rebuilt as detached purged nodes with their identity intact.
"""

from __future__ import annotations

import hashlib
import struct
from collections import Counter

from repro.core.buffer import BufferNode
from repro.xmlio.errors import FreezeSignal  # noqa: F401 - core-side re-export

MAGIC = b"GCXS"

#: Bump whenever the blob layout *or* the meaning of any serialized
#: field changes (including operator-program or DFA key semantics —
#: frame pcs and DFA multiset keys are only stable within one format
#: generation).  Old blobs are then refused with a clear error.
FORMAT_VERSION = 1

_F64 = struct.Struct(">d")
_U16 = struct.Struct(">H")

#: Varint magnitude cap (bits).  Slot values are unbounded Python ints
#: — a large aggregate sum must stay snapshottable — so the cap is not
#: 64; it only exists to reject runaway bytes in a corrupt blob with a
#: clear error instead of materializing an absurd integer.
_MAX_VARINT_BITS = 4096

# slot / reference value tags
_TAG_NONE = 0
_TAG_NODE = 1
_TAG_STR = 2
_TAG_INT = 3
_TAG_FLOAT = 4

# frame kinds (format-local, independent of program.py constants)
_FRAME_CHILD = 0
_FRAME_DESC = 1
_FRAME_SELF = 2

_FRAME_KINDS = {"child": _FRAME_CHILD, "desc": _FRAME_DESC, "self": _FRAME_SELF}
_FRAME_NAMES = {v: k for k, v in _FRAME_KINDS.items()}


class SnapshotError(ValueError):
    """Base class for snapshot encode/decode failures."""


class SnapshotFormatError(SnapshotError):
    """The blob is not a snapshot this build can read — wrong magic,
    stale/unknown format version, or truncated/corrupt payload."""


class SnapshotPlanMismatch(SnapshotError):
    """The blob is a valid snapshot of a *different* plan (canonical
    text or role-table digest differs) and was refused."""


def plan_digest(plan) -> str:
    """Identity key of a compiled plan for snapshot keying.

    Canonical text alone is not enough: the same normalized query
    compiled with different analysis settings (e.g. ``first_witness``)
    yields different role tables, and restoring across that boundary
    would silently mis-assign roles.  Digest both.
    """
    h = hashlib.sha256()
    h.update(plan.canonical_text().encode("utf-8"))
    h.update(b"\x00")
    h.update(plan.analysis.describe_roles().encode("utf-8"))
    return h.hexdigest()


# ---------------------------------------------------------------------------
# primitives
# ---------------------------------------------------------------------------


class BlobWriter:
    """Append-only encoder over the four primitive encodings."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def raw(self, data: bytes) -> None:
        self._parts.append(data)

    def varint(self, value: int) -> None:
        if value < 0:
            raise SnapshotError(f"varint cannot encode negative {value}")
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self._parts.append(bytes(out))

    def svarint(self, value: int) -> None:
        """Zigzag-encoded signed varint.

        Unbounded: Python slot values (e.g. aggregate sums) are not
        64-bit ints, so the mapping is the arithmetic zigzag
        ``-2v-1 / 2v`` rather than the shift-and-xor form that only
        holds inside a fixed width.
        """
        self.varint(-value * 2 - 1 if value < 0 else value * 2)

    def bool_(self, value: bool) -> None:
        self._parts.append(b"\x01" if value else b"\x00")

    def f64(self, value: float) -> None:
        self._parts.append(_F64.pack(value))

    def blob(self, data: bytes) -> None:
        self.varint(len(data))
        self._parts.append(bytes(data))

    def text(self, value: str) -> None:
        self.blob(value.encode("utf-8"))

    def opt_text(self, value: str | None) -> None:
        self.bool_(value is not None)
        if value is not None:
            self.text(value)

    def opt_blob(self, value: bytes | None) -> None:
        self.bool_(value is not None)
        if value is not None:
            self.blob(value)

    def pairs(self, items) -> None:
        """A length-prefixed sequence of (str, str) pairs."""
        items = list(items)
        self.varint(len(items))
        for name, value in items:
            self.text(name)
            self.text(value)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class BlobReader:
    """Strict decoder; any overrun raises :class:`SnapshotFormatError`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def raw(self, size: int) -> bytes:
        end = self._pos + size
        if end > len(self._data):
            raise SnapshotFormatError("truncated snapshot blob")
        piece = self._data[self._pos : end]
        self._pos = end
        return piece

    def varint(self) -> int:
        value = 0
        shift = 0
        data = self._data
        pos = self._pos
        size = len(data)
        while True:
            if pos >= size:
                raise SnapshotFormatError("truncated snapshot blob (varint)")
            byte = data[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > _MAX_VARINT_BITS:
                raise SnapshotFormatError("varint overflow in snapshot blob")
        self._pos = pos
        return value

    def svarint(self) -> int:
        raw = self.varint()
        return (raw >> 1) ^ -(raw & 1)

    def bool_(self) -> bool:
        byte = self.raw(1)[0]
        if byte > 1:
            raise SnapshotFormatError(
                f"invalid bool byte 0x{byte:02x} in snapshot blob"
            )
        return byte == 1

    def f64(self) -> float:
        return _F64.unpack(self.raw(8))[0]

    def blob(self) -> bytes:
        return self.raw(self.varint())

    def text(self) -> str:
        return self.blob().decode("utf-8")

    def opt_text(self) -> str | None:
        return self.text() if self.bool_() else None

    def opt_blob(self) -> bytes | None:
        return self.blob() if self.bool_() else None

    def pairs(self) -> list[tuple[str, str]]:
        return [(self.text(), self.text()) for _ in range(self.varint())]

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data)


# ---------------------------------------------------------------------------
# node references
# ---------------------------------------------------------------------------


def _write_noderef(w: BlobWriter, node, purged: dict) -> None:
    """A buffer-node reference: 0 for ``None``, else ``seq + 1``.
    Purged referents are collected for the side table."""
    if node is None:
        w.varint(0)
        return
    w.varint(node.seq + 1)
    if node.purged:
        purged[node.seq] = node


def _read_noderef(r: BlobReader) -> int | None:
    ref = r.varint()
    return None if ref == 0 else ref - 1


class _Resolver:
    """Maps decoded integer refs back to live/purged BufferNodes."""

    def __init__(self, seq_map: dict, purged: dict):
        self._seq_map = seq_map
        self._purged_specs = purged
        self._purged_nodes: dict[int, BufferNode] = {}

    def __call__(self, ref: int | None):
        if ref is None:
            return None
        node = self._seq_map.get(ref)
        if node is not None:
            return node
        node = self._purged_nodes.get(ref)
        if node is None:
            spec = self._purged_specs.get(ref)
            if spec is None:
                raise SnapshotFormatError(
                    f"snapshot references unknown buffer node seq {ref}"
                )
            tag, text, attrs = spec
            node = BufferNode(tag, None, ref, text=text, attributes=dict(attrs))
            node.closed = True
            node.purged = True
            self._purged_nodes[ref] = node
        return node


# ---------------------------------------------------------------------------
# sections
# ---------------------------------------------------------------------------


def _encode_stats(w: BlobWriter, stats) -> None:
    w.bool_(stats.record_series)
    w.varint(len(stats.series))
    for value in stats.series:
        w.varint(value)
    w.varint(stats.watermark)
    w.varint(stats.tokens)
    w.varint(stats.nodes_buffered)
    w.varint(stats.nodes_purged)
    w.varint(stats.roles_assigned)
    w.varint(stats.roles_removed)
    w.varint(stats.subtrees_skipped)
    w.varint(stats.output_chars)
    w.varint(stats.final_buffered)


def _decode_stats(r: BlobReader) -> dict:
    record_series = r.bool_()
    series = [r.varint() for _ in range(r.varint())]
    return {
        "record_series": record_series,
        "series": series,
        "watermark": r.varint(),
        "tokens": r.varint(),
        "nodes_buffered": r.varint(),
        "nodes_purged": r.varint(),
        "roles_assigned": r.varint(),
        "roles_removed": r.varint(),
        "subtrees_skipped": r.varint(),
        "output_chars": r.varint(),
        "final_buffered": r.varint(),
    }


_NODE_ELEMENT = 0
_NODE_TEXT = 1


def _encode_buffer(w: BlobWriter, buffer) -> None:
    w.varint(buffer._seq)
    w.varint(buffer.live_count)
    # preorder, each record followed by its child count then children
    stack = [buffer.root]
    while stack:
        node = stack.pop()
        if node.tag is None:
            w.raw(b"\x01")  # _NODE_TEXT
            w.varint(node.seq)
            w.text(node.text or "")
        else:
            w.raw(b"\x00")  # _NODE_ELEMENT
            w.varint(node.seq)
            w.text(node.tag)
            w.pairs(node.attributes.items())
        w.bool_(node.closed)
        roles = node.roles
        w.varint(len(roles))
        for name, count in roles.items():
            w.text(name)
            w.varint(count)
        w.varint(node.subtree_roles)
        w.varint(len(node.children))
        stack.extend(reversed(node.children))


def _decode_buffer(r: BlobReader) -> tuple[int, int, BufferNode, dict]:
    """Returns ``(seq_counter, live_count, root, seq→node map)``."""
    seq_counter = r.varint()
    live_count = r.varint()
    seq_map: dict[int, BufferNode] = {}

    def read_node(parent: BufferNode | None) -> tuple[BufferNode, int]:
        kind = r.raw(1)[0]
        seq = r.varint()
        if kind == _NODE_TEXT:
            node = BufferNode(None, parent, seq, text=r.text())
        elif kind == _NODE_ELEMENT:
            node = BufferNode(r.text(), parent, seq, attributes=dict(r.pairs()))
        else:
            raise SnapshotFormatError(f"unknown buffer node kind {kind}")
        node.closed = r.bool_()
        roles = Counter()
        for _ in range(r.varint()):
            name = r.text()
            roles[name] = r.varint()
        node.roles = roles
        node.subtree_roles = r.varint()
        seq_map[seq] = node
        return node, r.varint()

    root, n_children = read_node(None)
    # iterative preorder rebuild: (parent, children still to read)
    stack: list[list] = [[root, n_children]]
    while stack:
        top = stack[-1]
        if top[1] == 0:
            stack.pop()
            continue
        top[1] -= 1
        child, n_grandchildren = read_node(top[0])
        top[0].children.append(child)
        top[0].child_seqs.append(child.seq)
        stack.append([child, n_grandchildren])
    return seq_counter, live_count, root, seq_map


def _encode_lexer(w: BlobWriter, state: dict) -> None:
    w.blob(state["buf"])
    w.varint(state["base"])
    w.bool_(state["keep_whitespace"])
    w.bool_(state["started"])
    w.bool_(state["closed"])
    tags = state["open_tags"]
    w.varint(len(tags))
    for tag in tags:
        w.text(tag)
    pending_end = state["pending_end"]
    w.bool_(pending_end is not None)
    if pending_end is not None:
        w.text(pending_end[0])
        w.varint(pending_end[1])
    w.varint(state["resume"])
    w.opt_blob(state["need"])
    chunks = state["pending_chunks"]
    w.varint(len(chunks))
    for chunk in chunks:
        w.blob(chunk)
    w.blob(state["joint"])
    w.opt_text(state["internal_subset"])
    names = state["names"]
    w.varint(len(names))
    for raw in names:
        w.blob(raw)
    parked = state["skip_parked"]
    w.bool_(parked is not None)
    if parked is not None:
        w.varint(parked[0])
        w.varint(parked[1])


def _decode_lexer(r: BlobReader) -> dict:
    state = {
        "buf": r.blob(),
        "base": r.varint(),
        "keep_whitespace": r.bool_(),
        "started": r.bool_(),
        "closed": r.bool_(),
        "open_tags": [r.text() for _ in range(r.varint())],
    }
    state["pending_end"] = (r.text(), r.varint()) if r.bool_() else None
    state["resume"] = r.varint()
    state["need"] = r.opt_blob()
    state["pending_chunks"] = [r.blob() for _ in range(r.varint())]
    state["joint"] = r.blob()
    state["internal_subset"] = r.opt_text()
    state["names"] = [r.blob() for _ in range(r.varint())]
    state["skip_parked"] = (r.varint(), r.varint()) if r.bool_() else None
    return state


def _encode_projector(w: BlobWriter, state: dict, purged: dict) -> None:
    depth = len(state["states"])
    w.varint(depth)
    for level in range(depth):
        tag = state["tags"][level]
        w.opt_text(tag)
        attrs = state["attrs"][level]
        w.bool_(attrs is not None)
        if attrs is not None:
            w.pairs(dict(attrs).items())
        key = state["states"][level]  # canonical DFA multiset
        w.varint(len(key))
        for role, index, count in key:
            w.varint(role)
            w.varint(index)
            w.varint(count)
        _write_noderef(w, state["nodes"][level], purged)
    w.bool_(state["exhausted"])
    pending = state["pending_skip"]
    w.bool_(pending is not None)
    if pending is not None:
        _write_noderef(w, pending[0], purged)


def _decode_projector(r: BlobReader) -> dict:
    depth = r.varint()
    tags: list = []
    attrs: list = []
    states: list = []
    nodes: list = []
    for _ in range(depth):
        tags.append(r.opt_text())
        attrs.append(tuple(r.pairs()) if r.bool_() else None)
        states.append(
            tuple((r.varint(), r.varint(), r.varint()) for _ in range(r.varint()))
        )
        nodes.append(_read_noderef(r))
    state = {
        "tags": tags,
        "attrs": attrs,
        "states": states,
        "nodes": nodes,
        "exhausted": r.bool_(),
    }
    state["pending_skip"] = (_read_noderef(r),) if r.bool_() else None
    return state


def _encode_value(w: BlobWriter, value, purged: dict) -> None:
    if value is None:
        w.raw(bytes((_TAG_NONE,)))
    elif isinstance(value, BufferNode):
        w.raw(bytes((_TAG_NODE,)))
        _write_noderef(w, value, purged)
    elif isinstance(value, str):
        w.raw(bytes((_TAG_STR,)))
        w.text(value)
    elif isinstance(value, bool):
        raise SnapshotError(f"unexpected bool slot value {value!r}")
    elif isinstance(value, int):
        w.raw(bytes((_TAG_INT,)))
        w.svarint(value)
    elif isinstance(value, float):
        w.raw(bytes((_TAG_FLOAT,)))
        w.f64(value)
    else:
        raise SnapshotError(f"cannot serialize slot value {value!r}")


def _decode_value(r: BlobReader):
    """Returns the value, with node refs as ``("node", ref)`` markers."""
    tag = r.raw(1)[0]
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_NODE:
        return ("node", _read_noderef(r))
    if tag == _TAG_STR:
        return r.text()
    if tag == _TAG_INT:
        return r.svarint()
    if tag == _TAG_FLOAT:
        return r.f64()
    raise SnapshotFormatError(f"unknown slot value tag {tag}")


def _encode_evaluator(w: BlobWriter, state: dict, purged: dict) -> None:
    w.varint(state["pc"])
    slots = state["slots"]
    w.varint(len(slots))
    for value in slots:
        _encode_value(w, value, purged)
    frames = state["frames"]
    w.varint(len(frames))
    for frame in frames:
        w.varint(frame["init_pc"])
        kind = _FRAME_KINDS[frame["kind"]]
        w.raw(bytes((kind,)))
        if kind == _FRAME_CHILD:
            _write_noderef(w, frame["context"], purged)
            w.varint(frame["last_seq"])
            w.varint(frame["matched"])
            w.bool_(frame["done"])
        elif kind == _FRAME_DESC:
            stack = frame["stack"]
            w.bool_(stack is not None)
            if stack is not None:
                w.varint(len(stack))
                for node, seq in stack:
                    _write_noderef(w, node, purged)
                    w.varint(seq)
            w.varint(frame["matched"])
            w.bool_(frame["done"])
            _write_noderef(w, frame["pending"], purged)
            w.bool_(frame["started"])
        else:  # _FRAME_SELF
            _write_noderef(w, frame["context"], purged)
            w.bool_(frame["done"])


def _decode_evaluator(r: BlobReader) -> dict:
    state = {
        "pc": r.varint(),
        "slots": [_decode_value(r) for _ in range(r.varint())],
    }
    frames = []
    for _ in range(r.varint()):
        init_pc = r.varint()
        kind = r.raw(1)[0]
        if kind == _FRAME_CHILD:
            frames.append(
                {
                    "init_pc": init_pc,
                    "kind": "child",
                    "context": _read_noderef(r),
                    "last_seq": r.varint(),
                    "matched": r.varint(),
                    "done": r.bool_(),
                }
            )
        elif kind == _FRAME_DESC:
            stack = None
            if r.bool_():
                stack = [
                    (_read_noderef(r), r.varint()) for _ in range(r.varint())
                ]
            frames.append(
                {
                    "init_pc": init_pc,
                    "kind": "desc",
                    "stack": stack,
                    "matched": r.varint(),
                    "done": r.bool_(),
                    "pending": _read_noderef(r),
                    "started": r.bool_(),
                }
            )
        elif kind == _FRAME_SELF:
            frames.append(
                {
                    "init_pc": init_pc,
                    "kind": "self",
                    "context": _read_noderef(r),
                    "done": r.bool_(),
                }
            )
        else:
            raise SnapshotFormatError(f"unknown frame kind {kind}")
    state["frames"] = frames
    return state


# ---------------------------------------------------------------------------
# whole-session encode / decode
# ---------------------------------------------------------------------------


class SessionSnapshot:
    """Decoded snapshot: plain data plus integer node references.

    ``resolve`` (a :class:`_Resolver`) is attached by
    :func:`decode_session`; :meth:`repro.core.session.StreamSession.restore`
    threads it through the component ``restore_state`` calls.
    """

    __slots__ = (
        "plan_text",
        "roles_digest",
        "gc_enabled",
        "drain",
        "binary_output",
        "bytes_fed",
        "elapsed",
        "first_output_delta",
        "stats",
        "seq_counter",
        "live_count",
        "root",
        "seq_map",
        "lexer",
        "projector",
        "chars_written",
        "delivered_output",
        "evaluator",
        "output_parts",
        "input_chunks",
        "resolve",
    )


def encode_session(state: dict) -> bytes:
    """Serialize one frozen session's assembled state dict."""
    w = BlobWriter()
    w.raw(MAGIC)
    w.raw(_U16.pack(FORMAT_VERSION))
    w.text(state["plan_text"])
    w.text(state["roles_digest"])
    w.bool_(state["gc_enabled"])
    w.bool_(state["drain"])
    w.bool_(state["binary_output"])
    w.varint(state["bytes_fed"])
    w.f64(state["elapsed"])
    first = state["first_output_delta"]
    w.bool_(first is not None)
    if first is not None:
        w.f64(first)
    purged: dict = {}
    _encode_stats(w, state["stats"])
    _encode_buffer(w, state["buffer"])
    _encode_lexer(w, state["lexer"])
    _encode_projector(w, state["projector"], purged)
    w.varint(state["chars_written"])
    w.varint(state["delivered_output"])
    _encode_evaluator(w, state["evaluator"], purged)
    parts = state["output_parts"]
    binary = state["binary_output"]
    w.varint(len(parts))
    for part in parts:
        w.blob(part if binary else part.encode("utf-8"))
    chunks = state["input_chunks"]
    w.varint(len(chunks))
    for chunk in chunks:
        w.blob(chunk)
    # purged-node side table, discovered while encoding the refs above
    w.varint(len(purged))
    for seq in sorted(purged):
        node = purged[seq]
        w.varint(seq)
        w.opt_text(node.tag)
        w.opt_text(node.text)
        w.pairs(node.attributes.items())
    return w.getvalue()


def read_header(blob: bytes) -> tuple[BlobReader, str, str]:
    """Validate magic + version; returns (reader, plan_text, digest)."""
    r = BlobReader(blob)
    if r.raw(4) != MAGIC:
        raise SnapshotFormatError("not a GCX session snapshot (bad magic)")
    version = _U16.unpack(r.raw(2))[0]
    if version != FORMAT_VERSION:
        raise SnapshotFormatError(
            f"snapshot format v{version} is not supported by this build "
            f"(expected v{FORMAT_VERSION}); refusing to restore"
        )
    return r, r.text(), r.text()


def peek_plan_text(blob: bytes) -> str:
    """The canonical plan text a snapshot was taken against (header
    only; the body is not decoded)."""
    _, plan_text, _ = read_header(blob)
    return plan_text


def decode_session(blob: bytes) -> SessionSnapshot:
    r, plan_text, roles_digest = read_header(blob)
    snap = SessionSnapshot()
    snap.plan_text = plan_text
    snap.roles_digest = roles_digest
    snap.gc_enabled = r.bool_()
    snap.drain = r.bool_()
    snap.binary_output = r.bool_()
    snap.bytes_fed = r.varint()
    snap.elapsed = r.f64()
    snap.first_output_delta = r.f64() if r.bool_() else None
    snap.stats = _decode_stats(r)
    snap.seq_counter, snap.live_count, snap.root, snap.seq_map = _decode_buffer(r)
    snap.lexer = _decode_lexer(r)
    snap.projector = _decode_projector(r)
    snap.chars_written = r.varint()
    snap.delivered_output = r.varint()
    snap.evaluator = _decode_evaluator(r)
    raw_parts = [r.blob() for _ in range(r.varint())]
    snap.output_parts = (
        raw_parts
        if snap.binary_output
        else [part.decode("utf-8") for part in raw_parts]
    )
    snap.input_chunks = [r.blob() for _ in range(r.varint())]
    purged: dict = {}
    for _ in range(r.varint()):
        seq = r.varint()
        purged[seq] = (r.opt_text(), r.opt_text(), r.pairs())
    snap.resolve = _Resolver(snap.seq_map, purged)
    return snap


def verify_plan(snap: SessionSnapshot, plan) -> None:
    """Refuse a snapshot taken against a different plan."""
    if snap.plan_text != plan.canonical_text():
        raise SnapshotPlanMismatch(
            "snapshot was taken against a different plan "
            "(canonical query text differs); refusing to restore"
        )
    digest = plan_digest(plan)
    if snap.roles_digest != digest:
        raise SnapshotPlanMismatch(
            "snapshot was taken against a different role table "
            "(same query text, different analysis settings); "
            "refusing to restore"
        )
