"""GCXEngine: the user-facing facade of the reproduction.

Ties the pipeline together exactly as the paper's Figure 2 sketches:
query → static analysis (projection paths, roles, signOff insertion) →
runtime (stream pre-projector → buffer manager → pull evaluator).

Typical use::

    from repro import GCXEngine

    engine = GCXEngine()
    result = engine.query(query_text, xml_text)
    print(result.output)
    print(result.stats.summary())

Ablation switches:

* ``gc_enabled=False`` — signOff statements are not executed: the
  buffer degenerates to a statically projected document (what a
  projection-only system buffers).
* ``first_witness=False`` — existence tests buffer every witness
  instead of only the first (drops the ``[1]`` predicates).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.analysis import StaticAnalysis, analyze_query
from repro.core.buffer import Buffer
from repro.core.matcher import PathMatcher
from repro.core.projector import StreamProjector
from repro.core.evaluator import PullEvaluator
from repro.core.signoff import insert_signoffs
from repro.core.stats import BufferStats
from repro.xmlio.lexer import make_lexer
from repro.xmlio.writer import XmlWriter
from repro.xquery import ast as q
from repro.xquery.normalize import normalize_query
from repro.xquery.parser import parse_query
from repro.xquery.pretty import pretty_print


@dataclass
class CompiledQuery:
    """A query after static analysis, ready to run over any stream."""

    source: str
    parsed: q.Query
    normalized: q.Query
    analysis: StaticAnalysis
    rewritten: q.Query
    matcher: PathMatcher

    def describe(self) -> str:
        """Role table plus the rewritten query — the textual analogue
        of the demo's static-analysis visualisation (Figure 3(a))."""
        return (
            "roles:\n"
            + self.analysis.describe_roles()
            + "\n\nrewritten query:\n"
            + pretty_print(self.rewritten)
        )


@dataclass
class RunResult:
    """Outcome of evaluating one compiled query over one document."""

    output: str
    stats: BufferStats
    compiled: CompiledQuery


class GCXEngine:
    """Streaming XQuery engine with active garbage collection."""

    name = "gcx"

    def __init__(
        self,
        gc_enabled: bool = True,
        first_witness: bool = True,
        record_series: bool = True,
        drain: bool = True,
    ):
        self.gc_enabled = gc_enabled
        self.first_witness = first_witness
        self.record_series = record_series
        self.drain = drain

    # ------------------------------------------------------------------

    def compile(self, query_text: str) -> CompiledQuery:
        """Parse, normalize and statically analyze *query_text*.

        Raises:
            XQueryParseError / NormalizationError / AnalysisError /
            MatcherError: when the query is outside the supported
            fragment.
        """
        parsed = parse_query(query_text)
        normalized = normalize_query(parsed)
        analysis = analyze_query(normalized, first_witness=self.first_witness)
        rewritten = insert_signoffs(normalized, analysis)
        matcher_spec = [(role.name, role.path) for role in analysis.roles]
        matcher = PathMatcher(matcher_spec)
        return CompiledQuery(
            query_text, parsed, normalized, analysis, rewritten, matcher
        )

    def run(
        self, compiled: CompiledQuery, xml_text, output_stream=None
    ) -> RunResult:
        """Evaluate a compiled query over *xml_text*.

        Args:
            compiled: result of :meth:`compile`.
            xml_text: document string, or a file-like object with
                ``read()`` (read once; only the buffer is minimized).
            output_stream: optional sink with ``write()``.  When given,
                results are emitted incrementally as evaluation
                progresses and ``RunResult.output`` is empty.
        """
        if hasattr(xml_text, "read"):
            xml_text = xml_text.read()
        stats = BufferStats(record_series=self.record_series)
        buffer = Buffer(stats)
        # A fresh matcher per run: state instances are per-stream.
        matcher = PathMatcher(
            [(role.name, role.path) for role in compiled.analysis.roles]
        )
        lexer = make_lexer(xml_text)
        projector = StreamProjector(lexer, matcher, buffer, stats)
        writer = XmlWriter(stream=output_stream)
        evaluator = PullEvaluator(
            compiled.rewritten, projector, buffer, writer, self.gc_enabled
        )
        started = time.perf_counter()
        evaluator.run()
        if self.drain:
            projector.run_to_end()
        stats.elapsed = time.perf_counter() - started
        stats.final_buffered = buffer.live_count
        buffer.clear()
        output = writer.getvalue()
        stats.output_chars = writer.chars_written
        return RunResult(output, stats, compiled)

    def query(self, query_text: str, xml_text: str) -> RunResult:
        """Compile and run in one call."""
        return self.run(self.compile(query_text), xml_text)

    def evaluate(self, query_text: str, xml_text: str) -> str:
        """Convenience: return just the serialized output."""
        return self.query(query_text, xml_text).output
