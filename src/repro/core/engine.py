"""GCXEngine: the user-facing facade of the reproduction.

Ties the pipeline together exactly as the paper's Figure 2 sketches:
query → static analysis (projection paths, roles, signOff insertion) →
runtime (stream pre-projector → buffer manager → pull evaluator) — but
split into a **compile-once / stream-many** architecture (DESIGN.md §1):

* :meth:`GCXEngine.compile` produces an immutable
  :class:`~repro.core.plan.QueryPlan`, cached in a per-engine LRU
  (:class:`~repro.core.plan.PlanCache`) keyed by the normalized query
  text — static analysis runs once per distinct query, no matter how
  many documents follow;
* :meth:`GCXEngine.run` evaluates a plan over one document, accepting a
  complete string or UTF-8 ``bytes``, a file-like object (read in
  bounded chunks; open binary files for the zero-copy bytes path,
  DESIGN.md §11), or any iterable of chunks;
* :meth:`GCXEngine.session` opens a push-based
  :class:`~repro.core.session.StreamSession` that accepts XML in
  arbitrary chunks via ``feed()`` / ``finish()`` while evaluation and
  active garbage collection progress concurrently.

Typical use::

    from repro import GCXEngine

    engine = GCXEngine()

    # one-shot (compiles, cached for next time):
    result = engine.query(query_text, xml_text)
    print(result.output)
    print(result.stats.summary())

    # compile once, stream many (binary reads: the lexer scans the
    # raw bytes and decodes text lazily):
    plan = engine.compile(query_text)
    for path in documents:
        with open(path, "rb") as handle:
            print(engine.run(plan, handle).stats.summary())

    # push chunks as they arrive (e.g. from a socket):
    session = engine.session(plan)
    for chunk in chunks:
        session.feed(chunk)
    result = session.finish()

Ablation switches:

* ``gc_enabled=False`` — signOff statements are not executed: the
  buffer degenerates to a statically projected document (what a
  projection-only system buffers).
* ``first_witness=False`` — existence tests buffer every witness
  instead of only the first (drops the ``[1]`` predicates).
* ``compiled=False`` — run the interpreting NFA projector instead of
  the compiled lazy-DFA kernel (DESIGN.md §9).  Observable behaviour
  is byte-identical either way; the switch exists for differential
  testing and for benchmarking the kernel against its oracle.
* ``compiled_eval=False`` — run the interpreting
  :class:`~repro.core.evaluator.PullEvaluator` instead of the compiled
  operator-program VM (DESIGN.md §10).  Again byte-identical; again an
  oracle switch.  ``gcx run --interpreted`` sets both to ``False``.
* ``codegen=False`` — run the table-driven kernels instead of the
  per-plan generated-code kernels (DESIGN.md §12).  Byte-identical; the
  fallback ladder is codegen → tables → interpreter, and each level is
  the differential oracle of the one above.  ``gcx run --no-codegen``
  sets it; ``--interpreted`` bypasses codegen implicitly (generated
  kernels specialize the *compiled* table kernels, so disabling those
  disables codegen with them).
* ``fused_lexer=False`` — keep the per-event lexer pull under the
  generated projector instead of the fused batch front-end (Kernel C,
  DESIGN.md §15).  Byte-identical; ``gcx run --no-fused-lexer`` sets
  it.  Only consulted where ``compiled`` and ``codegen`` already
  selected the generated tier, and only effective for bytes sources
  (the str lexer has no batch projection surface).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.analysis import analyze_query
from repro.core.buffer import Buffer
from repro.core.codegen import (
    CodegenEvaluator,
    GeneratedStreamProjector,
    generate_plan_kernels,
)
from repro.core.matcher import PathDFA, PathMatcher
from repro.core.plan import CompiledQuery, PlanCache, QueryPlan
from repro.core.program import (
    CompiledEvaluator,
    ProgramCompileError,
    compile_program,
)
from repro.core.projector import CompiledStreamProjector, StreamProjector
from repro.core.evaluator import PullEvaluator
from repro.core.session import StreamSession
from repro.core.signoff import insert_signoffs
from repro.core.stats import BufferStats
from repro.xmlio.lexer import make_lexer
from repro.xmlio.writer import XmlWriter
from repro.xquery.normalize import normalize_query
from repro.xquery.parser import parse_query
from repro.xquery.pretty import pretty_print

__all__ = [
    "CompiledQuery",
    "DEFAULT_CHUNK_SIZE",
    "GCXEngine",
    "QueryPlan",
    "RunResult",
]

#: Default read size when streaming from a file-like object.
DEFAULT_CHUNK_SIZE = 64 * 1024


def _file_chunks(handle, chunk_size: int):
    """Yield *handle* in ``chunk_size`` reads until exhausted."""
    while True:
        chunk = handle.read(chunk_size)
        if not chunk:
            return
        yield chunk


def _try_compile_program(rewritten):
    """Lower the rewritten query into an operator program, or ``None``
    when the query is outside the compiled fragment (runs then use the
    interpreting evaluator — a fallback, never a failure)."""
    try:
        return compile_program(rewritten)
    except ProgramCompileError:
        return None


@dataclass
class RunResult:
    """Outcome of evaluating one compiled query over one document."""

    output: str
    stats: BufferStats
    compiled: QueryPlan


class GCXEngine:
    """Streaming XQuery engine with active garbage collection."""

    name = "gcx"

    #: namespace under which this engine's plans are cached; subclasses
    #: with a different compile pipeline must override it.
    plan_namespace = "gcx"

    def __init__(
        self,
        gc_enabled: bool = True,
        first_witness: bool = True,
        record_series: bool = True,
        drain: bool = True,
        plan_cache: PlanCache | None = None,
        compiled: bool = True,
        compiled_eval: bool = True,
        codegen: bool = True,
        fused_lexer: bool = True,
    ):
        self.gc_enabled = gc_enabled
        self.first_witness = first_witness
        self.record_series = record_series
        self.drain = drain
        #: drive streams through the compiled lazy-DFA kernel; False
        #: falls back to the interpreting NFA projector (the oracle).
        self.compiled = compiled
        #: evaluate through the compiled operator-program VM; False
        #: falls back to the interpreting PullEvaluator (the oracle).
        self.compiled_eval = compiled_eval
        #: use the per-plan generated-code kernels where the plan has
        #: them; False falls back to the table-driven kernels (the
        #: oracles).  Only consulted where ``compiled`` resp.
        #: ``compiled_eval`` already selected the compiled tier.
        self.codegen = codegen
        #: feed the projector from the generated fused lexer front-end
        #: (Kernel C) where the plan has one and the lexer supports
        #: batch projection; False falls back to the per-event pull.
        #: Only consulted where ``compiled`` and ``codegen`` already
        #: selected the generated tier.
        self.fused_lexer = fused_lexer
        #: LRU of compiled plans; pass a shared :class:`PlanCache` to
        #: let several engines reuse each other's compilations.
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()

    # ------------------------------------------------------------------
    # compilation (the plan layer)
    # ------------------------------------------------------------------

    def compile(self, query_text: str) -> QueryPlan:
        """Parse, normalize and statically analyze *query_text*.

        Cached: recompiling the same (or a whitespace-variant) query
        returns the shared immutable plan without re-running analysis.

        Raises:
            XQueryParseError / NormalizationError / AnalysisError /
            MatcherError: when the query is outside the supported
            fragment.
        """
        return self.plan_cache.get_or_compile(
            query_text,
            self._compile,
            namespace=self._cache_namespace(),
            canonicalize_fn=self._canonicalize,
        )

    def _cache_namespace(self) -> str:
        # first_witness changes the derived roles, so plans must not
        # leak between engines that disagree on it.
        return f"{self.plan_namespace}:fw={int(self.first_witness)}"

    def _canonicalize(self, query_text: str):
        """Parse + normalize only — enough for the cache to decide
        whether an equivalent plan already exists, without paying for
        static analysis."""
        parsed = parse_query(query_text)
        normalized = normalize_query(parsed)
        return pretty_print(normalized), (parsed, normalized)

    def _compile(self, query_text: str, context=None) -> QueryPlan:
        """The uncached compile pipeline (one full static analysis)."""
        if context is None:
            parsed = parse_query(query_text)
            normalized = normalize_query(parsed)
        else:
            parsed, normalized = context
        analysis = analyze_query(normalized, first_witness=self.first_witness)
        rewritten = insert_signoffs(normalized, analysis)
        matcher_spec = [(role.name, role.path) for role in analysis.roles]
        matcher = PathMatcher(matcher_spec)
        dfa = PathDFA(matcher)
        program = _try_compile_program(rewritten)
        return QueryPlan(
            query_text,
            parsed,
            normalized,
            analysis,
            rewritten,
            matcher,
            dfa=dfa,
            program=program,
            # Generated inside the plan cache's single-flight, so N
            # racing sessions of one query trigger exactly one
            # generation; eviction drops the kernels with the plan.
            kernels=generate_plan_kernels(dfa, analysis, program),
        )

    # ------------------------------------------------------------------
    # execution (the stream layer)
    # ------------------------------------------------------------------

    def run(
        self,
        compiled: QueryPlan,
        xml_source,
        output_stream=None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> RunResult:
        """Evaluate a compiled plan over one document (pull mode).

        Args:
            compiled: result of :meth:`compile`.
            xml_source: the document — a complete ``str`` or UTF-8
                ``bytes``, a file-like object with ``read()`` (read
                incrementally in *chunk_size* pieces; binary handles
                take the bytes-domain lexer), or an iterable of chunks
                (consumed lazily; the raw input is never joined).
            output_stream: optional sink with ``write()``.  When given,
                results are emitted incrementally as evaluation
                progresses and ``RunResult.output`` is empty.
            chunk_size: read size for file-like sources.
        """
        if hasattr(xml_source, "read"):
            xml_source = _file_chunks(xml_source, chunk_size)
        stats = BufferStats(record_series=self.record_series)
        buffer = Buffer(stats)
        lexer = make_lexer(xml_source)
        # The plan's matcher/dfa are immutable resp. logically immutable
        # (per-stream match state lives on the projector's stack), so
        # concurrent runs share them.
        kernels = compiled.kernels if self.codegen else None
        if self.compiled and compiled.dfa is not None:
            if (
                kernels is not None
                and self.fused_lexer
                and kernels.lexer is not None
                and hasattr(lexer, "project_into")
            ):
                # deepest tier (bytes sources only: make_lexer returns
                # the str lexer for str input, which has no batch
                # projection surface)
                projector = GeneratedStreamProjector(
                    kernels.lexer, lexer, compiled.dfa, buffer, stats
                )
            elif kernels is not None and kernels.projector is not None:
                projector = GeneratedStreamProjector(
                    kernels.projector, lexer, compiled.dfa, buffer, stats
                )
            else:
                projector = CompiledStreamProjector(
                    lexer, compiled.dfa, buffer, stats
                )
        else:
            projector = StreamProjector(lexer, compiled.matcher, buffer, stats)
        writer = XmlWriter(stream=output_stream)
        if self.compiled_eval and compiled.program is not None:
            if kernels is not None and kernels.evaluator is not None:
                evaluator = CodegenEvaluator(
                    kernels.evaluator,
                    compiled.program,
                    projector,
                    buffer,
                    writer,
                    self.gc_enabled,
                )
            else:
                evaluator = CompiledEvaluator(
                    compiled.program, projector, buffer, writer, self.gc_enabled
                )
        else:
            evaluator = PullEvaluator(
                compiled.rewritten, projector, buffer, writer, self.gc_enabled
            )
        started = time.perf_counter()
        evaluator.run()
        if self.drain:
            projector.run_to_end()
        stats.elapsed = time.perf_counter() - started
        stats.final_buffered = buffer.live_count
        buffer.clear()
        output = writer.getvalue()
        stats.output_chars = writer.chars_written
        return RunResult(output, stats, compiled)

    def session(
        self,
        query: QueryPlan | str,
        output_stream=None,
        max_pending_chunks: int | None = None,
        on_output=None,
        max_pending_output: int | None = None,
        binary_output: bool = False,
        checkpointable: bool = False,
    ) -> StreamSession:
        """Open a push-based streaming session (see
        :class:`~repro.core.session.StreamSession`).

        Args:
            query: a compiled :class:`QueryPlan`, or query text (which
                is compiled through the plan cache).
            output_stream: optional incremental result sink.
            max_pending_chunks: bound on chunks queued ahead of
                evaluation (backpressure); defaults to the session
                module's :data:`DEFAULT_MAX_PENDING_CHUNKS`.
            on_output: optional callback invoked (on the session
                worker) with each serialized output fragment as it is
                produced.
            max_pending_output: bound in characters (bytes under
                *binary_output*) on produced-but-undrained output;
                evaluation pauses beyond it until the consumer drains
                (``None`` = unbounded).
            binary_output: accumulate serialized output as UTF-8
                ``bytes`` (encoded once as produced);
                ``drain_output()`` / ``next_output()`` then return
                ``bytes`` ready for the wire.
            checkpointable: allow ``snapshot()``/``freeze()`` on this
                session (DESIGN.md §16).  Pins the table-driven
                kernel tier, whose state is fully serializable.
        """
        plan = query if isinstance(query, QueryPlan) else self.compile(query)
        kwargs = {}
        if max_pending_chunks is not None:
            kwargs["max_pending_chunks"] = max_pending_chunks
        return StreamSession(
            plan,
            gc_enabled=self.gc_enabled,
            record_series=self.record_series,
            drain=self.drain,
            output_stream=output_stream,
            on_output=on_output,
            max_pending_output=max_pending_output,
            compiled=self.compiled,
            compiled_eval=self.compiled_eval,
            codegen=self.codegen,
            fused_lexer=self.fused_lexer,
            binary_output=binary_output,
            checkpointable=checkpointable,
            **kwargs,
        )

    def restore_session(
        self,
        blob: bytes,
        output_stream=None,
        max_pending_chunks: int | None = None,
        on_output=None,
        max_pending_output: int | None = None,
    ) -> StreamSession:
        """Rebuild a checkpointed session from a ``snapshot()`` blob.

        The plan is recompiled (through the plan cache) from the
        canonical query text carried in the snapshot header, then the
        blob is verified against it — a snapshot from a different
        format version or a different plan/role analysis is refused.
        Feeding resumes at byte offset ``bytes_fed``.
        """
        from repro.core.snapshot import peek_plan_text

        plan = self.compile(peek_plan_text(blob))
        kwargs = {}
        if max_pending_chunks is not None:
            kwargs["max_pending_chunks"] = max_pending_chunks
        return StreamSession.restore(
            plan,
            blob,
            output_stream=output_stream,
            on_output=on_output,
            max_pending_output=max_pending_output,
            **kwargs,
        )

    def shared_session(
        self,
        max_pending_chunks: int | None = None,
        max_pending_batches: int | None = None,
    ):
        """Open a shared-stream session (DESIGN.md §13): subscribe any
        number of compiled plans, then feed one document once — a
        single lexer+projector pass serves every subscriber, and each
        subscriber's result is byte-identical to an independent
        :meth:`session` run of its plan.

        Args:
            max_pending_chunks: bound on input chunks queued ahead of
                the shared driver (backpressure, as in
                :meth:`session`).
            max_pending_batches: bound on event batches queued ahead of
                the slowest subscriber; the driver pauses beyond it.
        """
        from repro.multiplex.session import SharedStreamSession

        kwargs = {}
        if max_pending_chunks is not None:
            kwargs["max_pending_chunks"] = max_pending_chunks
        if max_pending_batches is not None:
            kwargs["max_pending_batches"] = max_pending_batches
        return SharedStreamSession(
            gc_enabled=self.gc_enabled,
            record_series=self.record_series,
            drain=self.drain,
            compiled_eval=self.compiled_eval,
            codegen=self.codegen,
            **kwargs,
        )

    def multiplex(
        self,
        queries,
        xml_source,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> list[RunResult]:
        """Evaluate several queries over one document in **one** pass.

        Compiles each query (plans are accepted as-is), subscribes all
        of them to a shared stream, feeds *xml_source* once, and
        returns one :class:`RunResult` per query, in order.  Accepts
        the same source shapes as :meth:`run`.
        """
        plans = [
            query if isinstance(query, QueryPlan) else self.compile(query)
            for query in queries
        ]
        if hasattr(xml_source, "read"):
            xml_source = _file_chunks(xml_source, chunk_size)
        elif isinstance(xml_source, (str, bytes)):
            xml_source = (xml_source,)
        shared = self.shared_session()
        subscribers = [shared.subscribe(plan) for plan in plans]
        try:
            for chunk in xml_source:
                shared.feed(chunk)
            shared.finish()
        except BaseException:
            shared.abort()
            raise
        return [subscriber.finish() for subscriber in subscribers]

    def query(self, query_text: str, xml_source) -> RunResult:
        """Compile (through the plan cache) and run in one call."""
        return self.run(self.compile(query_text), xml_source)

    def evaluate(self, query_text: str, xml_source) -> str:
        """Convenience: return just the serialized output."""
        return self.query(query_text, xml_source).output
