"""Streaming projection-path matcher.

The stream pre-projector must decide, per incoming token, which roles
the new node receives — *with multiplicities*: "a role can be assigned
to a node multiple times when queries involve the XPath descendant
axis" (paper, Section 2).  The matcher therefore maintains, for every
open element, a list of *state instances*; each instance is one partial
match derivation of one role path.

State semantics, for an instance of role ``r`` at step index ``i``
attached to node ``p``:

* step ``i`` is ``child::t`` — a newly arriving child of ``p`` that
  satisfies ``t`` advances a copy to ``(r, i+1)`` on the child.  With
  the first-witness predicate ``[1]`` the instance is *exhausted* by
  its first match and ignores later children.
* step ``i`` is ``descendant::t`` — matching children advance a copy,
  and every element child additionally inherits the instance unchanged
  (the self-loop that implements transitive descent).
* step ``i`` is ``descendant-or-self::t`` — like descendant, plus an
  epsilon advance on the node that receives the instance itself.

An instance whose step index reaches the end of its role path assigns
one instance of the role to the current node.  Nodes that receive
neither states nor roles start no match and carry none — the projector
skips their entire subtree.

Two machines implement these semantics:

* :class:`PathMatcher` — the reference NFA.  It interprets the state
  instance lists directly, one Python loop per token, and remains the
  **oracle** every other implementation is checked against.
* :class:`PathDFA` — the compiled kernel (DESIGN.md §9).  It performs
  the classic lazy subset construction over the NFA: a DFA state is the
  interned *multiset* of live ``(role, step)`` instances (multiplicities
  matter — a role can be assigned several times per node under
  descendant axes), and the transition for a ``(state, tag)`` pair is
  computed **once**, by running the oracle NFA on a materialized
  instance list, then memoized in a per-state dict.  After the first
  occurrence of a tag under a state, processing that tag costs one dict
  lookup instead of one NFA interpretation.  The memo is shared,
  thread-safely, by every run/session/server connection of the owning
  plan.
"""

from __future__ import annotations

import threading
from collections import Counter

from repro.xpath.ast import Axis, Path, Step


class MatcherError(ValueError):
    """Raised when a projection path uses unsupported features."""


class _StateInst:
    """One partial match derivation: (role index, step index).

    ``seen`` counts matching children for positional ``[n]`` steps;
    the instance exhausts once the n-th match was taken.
    """

    __slots__ = ("role", "index", "exhausted", "seen")

    def __init__(self, role: int, index: int):
        self.role = role
        self.index = index
        self.exhausted = False
        self.seen = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_StateInst(r{self.role}, i{self.index})"


class PathMatcher:
    """Compiled set of projection paths.

    Args:
        paths: pairs of (role name, absolute path).  Paths must use
            only child / descendant / descendant-or-self axes, and the
            first-witness predicate only on child steps — exactly what
            the static analysis generates.
    """

    def __init__(self, paths):
        self.role_names: list[str] = []
        self._steps: list[tuple[Step, ...]] = []
        for name, path in paths:
            self._validate(name, path)
            self.role_names.append(name)
            self._steps.append(path.steps)

    @staticmethod
    def _validate(name: str, path: Path) -> None:
        if not path.absolute:
            raise MatcherError(f"projection path for {name} must be absolute")
        for step in path.steps:
            if step.axis in (Axis.SELF, Axis.ATTRIBUTE):
                raise MatcherError(
                    f"projection path for {name}: axis {step.axis.value} "
                    "is resolved during analysis and cannot be matched"
                )
            if step.position is not None and step.axis is not Axis.CHILD:
                raise MatcherError(
                    f"projection path for {name}: positional predicates "
                    "are supported on child steps only"
                )
            if step.position is not None and step.position != 1:
                # [n>1] cannot be re-evaluated over the projected buffer:
                # the first n-1 matches are never buffered, so signOff
                # paths and iteration would count different ordinals
                # than the stream matcher.  The paper's role language
                # needs exactly [1]; the DOM baseline supports any [n].
                raise MatcherError(
                    f"projection path for {name}: streaming evaluation "
                    "supports only the first-witness predicate [1]"
                )

    # ------------------------------------------------------------------

    def initial(self) -> tuple[list[_StateInst], Counter]:
        """States and role assignments for the document node."""
        states: list[_StateInst] = []
        counts: Counter = Counter()
        for role in range(len(self._steps)):
            self._expand(role, 0, None, None, states, counts)
        return states, counts

    def enter_element(self, parent_states, tag: str):
        """Process an arriving element; returns (states, role counts)."""
        return self._enter(parent_states, tag, None)

    def enter_text(self, parent_states):
        """Process an arriving text node; returns (states, role counts).

        Text nodes have no children, so the returned state list is only
        meaningful for its emptiness; callers discard it.
        """
        return self._enter(parent_states, None, True)

    # ------------------------------------------------------------------

    def _enter(self, parent_states, tag, is_text):
        states: list[_StateInst] = []
        counts: Counter = Counter()
        for inst in parent_states:
            if inst.exhausted:
                continue
            step = self._steps[inst.role][inst.index]
            if step.axis is Axis.CHILD:
                if self._test(step, tag, is_text):
                    if step.position is None:
                        self._expand(
                            inst.role, inst.index + 1, tag, is_text, states, counts
                        )
                    else:
                        inst.seen += 1
                        if inst.seen == step.position:
                            inst.exhausted = True
                            self._expand(
                                inst.role,
                                inst.index + 1,
                                tag,
                                is_text,
                                states,
                                counts,
                            )
            else:  # DESCENDANT or DESCENDANT_OR_SELF: self-loop
                states.append(_StateInst(inst.role, inst.index))
                if self._test(step, tag, is_text):
                    self._expand(
                        inst.role, inst.index + 1, tag, is_text, states, counts
                    )
        return states, counts

    def _expand(self, role, index, tag, is_text, states, counts) -> None:
        """Attach state (role, index) to the current node, following
        epsilon moves of descendant-or-self steps (which may match the
        current node itself)."""
        steps = self._steps[role]
        if index == len(steps):
            counts[self.role_names[role]] += 1
            return
        step = steps[index]
        states.append(_StateInst(role, index))
        if step.axis is Axis.DESCENDANT_OR_SELF and self._test(step, tag, is_text):
            self._expand(role, index + 1, tag, is_text, states, counts)

    @staticmethod
    def _test(step: Step, tag, is_text) -> bool:
        """Does the current node satisfy the step's node test?

        ``tag=None, is_text=None`` denotes the document node, which
        satisfies only ``node()`` tests.
        """
        if is_text:
            return step.test.matches_text()
        if tag is None:
            return step.test.kind == "node"
        return step.test.matches_element(tag)


class PathDFA:
    """Lazy DFA over the NFA's instance multisets (the compiled kernel).

    States are interned multisets of live ``(role, step)`` NFA
    instances, canonicalized as sorted ``(role, step, count)`` tuples;
    state ``0`` (:attr:`dead`) is the empty multiset — nothing at or
    below such a node can ever match, which is exactly the projector's
    skip-subtree condition.  Element transitions are memoized per
    ``(state, tag)`` as ``(child_state, parent_state', role_counts)``:

    * ``child_state`` — the DFA state the arriving element enters;
    * ``parent_state'`` — the (possibly changed) state of the *parent*:
      a first-witness ``[1]`` child step exhausts on its first match,
      so the parent's live multiset shrinks;
    * ``role_counts`` — the role instances assigned to the arriving
      element (a plain ``name → n`` dict, or ``None``), shared
      immutably by every consumer of the memo.

    Text transitions are memoized per state the same way, as
    ``(role_counts, parent_state')``.

    Transitions are *computed* by the oracle :class:`PathMatcher`
    itself — a materialized instance list is pushed through
    ``enter_element``/``enter_text`` and the outcome canonicalized — so
    the DFA cannot diverge from the NFA semantics: laziness only decides
    *when* a transition is derived, never *what* it is.

    Thread safety: the memo is shared by all sessions of a plan.  Hot
    reads are plain dict lookups (no lock); misses intern and publish
    under ``_lock``, and concurrent misses of the same pair compute
    identical entries, so the last writer is indistinguishable from the
    first.
    """

    def __init__(self, matcher: PathMatcher):
        self.matcher = matcher
        self._lock = threading.Lock()
        #: canonical multiset -> state id
        self._ids: dict[tuple, int] = {(): 0}
        #: state id -> canonical multiset: sorted ((role, step, count), ...)
        self._states: list[tuple] = [()]
        #: state id -> {tag: (child_state, parent_state', counts|None)}
        self._element_memo: list[dict] = [{}]
        #: state id -> (counts|None, parent_state') once computed
        self._text_memo: list[tuple | None] = [None]
        instances, counts = matcher.initial()
        self.start = self._intern(self._canonical(instances))
        #: roles of the document node itself (``name → n`` or ``None``)
        self.start_roles: dict | None = dict(counts) or None

    #: state id of the empty multiset — the skip-subtree condition
    dead = 0

    # ------------------------------------------------------------------

    @staticmethod
    def _canonical(instances) -> tuple:
        """Canonical multiset of the live (non-exhausted) instances."""
        multiset: Counter = Counter()
        for inst in instances:
            if not inst.exhausted:
                multiset[(inst.role, inst.index)] += 1
        return tuple(
            (role, index, count)
            for (role, index), count in sorted(multiset.items())
        )

    def _intern(self, key: tuple) -> int:
        """Id of the canonical multiset *key*, creating the state on
        first sight.  Caller may hold ``_lock``; taking it twice is
        avoided by only calling this from locked or init context."""
        state = self._ids.get(key)
        if state is None:
            state = len(self._states)
            self._states.append(key)
            self._element_memo.append({})
            self._text_memo.append(None)
            self._ids[key] = state
        return state

    def intern_state(self, key) -> int:
        """Public interning hook for snapshot restore: the id of the
        canonical multiset *key* in this process (takes the memo lock).

        The key is validated against the matcher before it may touch
        the shared memo — a snapshot that slipped past the plan-digest
        check must not seed states the plan's NFA cannot produce.
        """
        steps = self.matcher._steps
        key = tuple(tuple(entry) for entry in key)
        for entry in key:
            if len(entry) != 3:
                raise ValueError(f"malformed DFA state entry {entry!r}")
            role, index, count = entry
            if not (0 <= role < len(steps) and 0 <= index <= len(steps[role])):
                raise ValueError(
                    f"DFA state entry {entry!r} is outside this plan's "
                    f"role table"
                )
            if count <= 0:
                raise ValueError(f"non-positive multiplicity in {entry!r}")
        if list(key) != sorted(key):
            raise ValueError("DFA state key is not canonically sorted")
        with self._lock:
            return self._intern(key)

    def _instances(self, state: int) -> list[_StateInst]:
        """Materialize the state's multiset as fresh NFA instances."""
        return [
            _StateInst(role, index)
            for role, index, count in self._states[state]
            for _ in range(count)
        ]

    # ------------------------------------------------------------------

    def element(self, state: int, tag: str) -> tuple:
        """Transition for an arriving element with *tag* under *state*;
        returns ``(child_state, parent_state', role_counts)``."""
        entry = self._element_memo[state].get(tag)
        if entry is None:
            entry = self.compute_element(state, tag)
        return entry

    def compute_element(self, state: int, tag: str) -> tuple:
        """Derive and memoize the ``(state, tag)`` element transition
        by running the oracle NFA once."""
        instances = self._instances(state)
        child_instances, counts = self.matcher.enter_element(instances, tag)
        child_key = self._canonical(child_instances)
        parent_key = self._canonical(instances)  # [1] steps may exhaust
        with self._lock:
            entry = self._element_memo[state].get(tag)
            if entry is None:
                entry = (
                    self._intern(child_key),
                    self._intern(parent_key),
                    dict(counts) or None,
                )
                self._element_memo[state][tag] = entry
        return entry

    def text(self, state: int) -> tuple:
        """Transition for an arriving text node under *state*; returns
        ``(role_counts, parent_state')``."""
        entry = self._text_memo[state]
        if entry is None:
            instances = self._instances(state)
            _, counts = self.matcher.enter_text(instances)
            parent_key = self._canonical(instances)
            with self._lock:
                entry = self._text_memo[state]
                if entry is None:
                    entry = (dict(counts) or None, self._intern(parent_key))
                    self._text_memo[state] = entry
        return entry

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Memo occupancy (observability for tests and server stats)."""
        with self._lock:
            return {
                "states": len(self._states),
                "element_transitions": sum(
                    len(memo) for memo in self._element_memo
                ),
                "text_transitions": sum(
                    1 for entry in self._text_memo if entry is not None
                ),
            }


class ProductDFA:
    """Lazy product of several plans' :class:`PathDFA` machines.

    The shared-stream multiplexer (DESIGN.md §13) runs **one** lexer
    pass over a document on behalf of N subscribed plans, and the only
    global decision that pass has to make is the skip decision: a
    subtree may be fast-forwarded at lexer speed exactly when it is
    dead in *every* subscribed plan.  The product DFA answers that
    question in one dict lookup per tag.

    A product state is the interned tuple of per-component state ids —
    component *i* is the id the *i*-th plan's own DFA would be in at
    this node, so the product state is, by construction, exactly the
    vector of states the subscribers' projectors hold on their own
    stacks.  A product state is *dead* when every component is dead
    (each component's dead state is its empty multiset, so the product
    dead condition is "no live instance of any subscribed plan at or
    below this node").

    Transitions delegate to the component DFAs — ``element`` asks each
    component for its own ``(child, parent', counts)`` transition and
    interns the child/parent vectors — so the product shares the
    components' memos with every single-plan session of those plans: a
    tag learned by a lone session is a dict hit for the multiplexer
    and vice versa.  Parent updates (first-witness ``[1]`` exhaustion)
    are mirrored so the product's dead verdicts can never run ahead of
    (or behind) any subscriber's own view.

    Thread safety follows :class:`PathDFA`: hot reads are plain dict
    lookups; misses intern and publish under ``_lock`` and concurrent
    misses compute identical entries.
    """

    def __init__(self, components):
        self.components: tuple[PathDFA, ...] = tuple(components)
        self._lock = threading.Lock()
        #: component-state vector -> product state id
        self._ids: dict[tuple, int] = {}
        #: product state id -> component-state vector
        self._states: list[tuple] = []
        #: product state id -> True when every component is dead
        self._dead: list[bool] = []
        #: product state id -> {tag: (child, parent', child_is_dead)}
        self._element_memo: list[dict] = []
        #: product state id -> parent' product state once computed
        self._text_memo: list[int | None] = []
        self.start = self._intern(tuple(dfa.start for dfa in self.components))

    # ------------------------------------------------------------------

    def _intern(self, key: tuple) -> int:
        """Id of the component vector *key*, creating the product state
        on first sight (caller holds ``_lock`` except during init)."""
        state = self._ids.get(key)
        if state is None:
            state = len(self._states)
            self._states.append(key)
            self._dead.append(all(c == PathDFA.dead for c in key))
            self._element_memo.append({})
            self._text_memo.append(None)
            self._ids[key] = state
        return state

    def is_dead(self, state: int) -> bool:
        """True when no subscribed plan can match at or below a node in
        *state* — the shared skip-subtree condition."""
        return self._dead[state]

    # ------------------------------------------------------------------

    def element(self, state: int, tag: str) -> tuple:
        """Transition for an arriving element with *tag* under *state*;
        returns ``(child_state, parent_state', child_is_dead)``."""
        entry = self._element_memo[state].get(tag)
        if entry is None:
            entry = self.compute_element(state, tag)
        return entry

    def compute_element(self, state: int, tag: str) -> tuple:
        """Derive and memoize the ``(state, tag)`` product transition
        from the component DFAs (their memos do the per-plan work)."""
        key = self._states[state]
        children = []
        parents = []
        for dfa, component in zip(self.components, key):
            child, parent, _counts = dfa.element(component, tag)
            children.append(child)
            parents.append(parent)
        with self._lock:
            entry = self._element_memo[state].get(tag)
            if entry is None:
                child = self._intern(tuple(children))
                entry = (child, self._intern(tuple(parents)), self._dead[child])
                self._element_memo[state][tag] = entry
        return entry

    def text(self, state: int) -> int:
        """Parent-state update for an arriving text node under *state*
        (text-step ``[1]`` exhaustion mirrored from the components)."""
        entry = self._text_memo[state]
        if entry is None:
            key = self._states[state]
            parents = tuple(
                dfa.text(component)[1]
                for dfa, component in zip(self.components, key)
            )
            with self._lock:
                entry = self._text_memo[state]
                if entry is None:
                    entry = self._intern(parents)
                    self._text_memo[state] = entry
        return entry

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Memo occupancy (the multiplex section of the STATS frame)."""
        with self._lock:
            return {
                "components": len(self.components),
                "states": len(self._states),
                "element_transitions": sum(
                    len(memo) for memo in self._element_memo
                ),
                "text_transitions": sum(
                    1 for entry in self._text_memo if entry is not None
                ),
            }
