"""Streaming projection-path matcher.

The stream pre-projector must decide, per incoming token, which roles
the new node receives — *with multiplicities*: "a role can be assigned
to a node multiple times when queries involve the XPath descendant
axis" (paper, Section 2).  The matcher therefore maintains, for every
open element, a list of *state instances*; each instance is one partial
match derivation of one role path.

State semantics, for an instance of role ``r`` at step index ``i``
attached to node ``p``:

* step ``i`` is ``child::t`` — a newly arriving child of ``p`` that
  satisfies ``t`` advances a copy to ``(r, i+1)`` on the child.  With
  the first-witness predicate ``[1]`` the instance is *exhausted* by
  its first match and ignores later children.
* step ``i`` is ``descendant::t`` — matching children advance a copy,
  and every element child additionally inherits the instance unchanged
  (the self-loop that implements transitive descent).
* step ``i`` is ``descendant-or-self::t`` — like descendant, plus an
  epsilon advance on the node that receives the instance itself.

An instance whose step index reaches the end of its role path assigns
one instance of the role to the current node.  Nodes that receive
neither states nor roles start no match and carry none — the projector
skips their entire subtree.
"""

from __future__ import annotations

from collections import Counter

from repro.xpath.ast import Axis, Path, Step


class MatcherError(ValueError):
    """Raised when a projection path uses unsupported features."""


class _StateInst:
    """One partial match derivation: (role index, step index).

    ``seen`` counts matching children for positional ``[n]`` steps;
    the instance exhausts once the n-th match was taken.
    """

    __slots__ = ("role", "index", "exhausted", "seen")

    def __init__(self, role: int, index: int):
        self.role = role
        self.index = index
        self.exhausted = False
        self.seen = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_StateInst(r{self.role}, i{self.index})"


class PathMatcher:
    """Compiled set of projection paths.

    Args:
        paths: pairs of (role name, absolute path).  Paths must use
            only child / descendant / descendant-or-self axes, and the
            first-witness predicate only on child steps — exactly what
            the static analysis generates.
    """

    def __init__(self, paths):
        self.role_names: list[str] = []
        self._steps: list[tuple[Step, ...]] = []
        for name, path in paths:
            self._validate(name, path)
            self.role_names.append(name)
            self._steps.append(path.steps)

    @staticmethod
    def _validate(name: str, path: Path) -> None:
        if not path.absolute:
            raise MatcherError(f"projection path for {name} must be absolute")
        for step in path.steps:
            if step.axis in (Axis.SELF, Axis.ATTRIBUTE):
                raise MatcherError(
                    f"projection path for {name}: axis {step.axis.value} "
                    "is resolved during analysis and cannot be matched"
                )
            if step.position is not None and step.axis is not Axis.CHILD:
                raise MatcherError(
                    f"projection path for {name}: positional predicates "
                    "are supported on child steps only"
                )
            if step.position is not None and step.position != 1:
                # [n>1] cannot be re-evaluated over the projected buffer:
                # the first n-1 matches are never buffered, so signOff
                # paths and iteration would count different ordinals
                # than the stream matcher.  The paper's role language
                # needs exactly [1]; the DOM baseline supports any [n].
                raise MatcherError(
                    f"projection path for {name}: streaming evaluation "
                    "supports only the first-witness predicate [1]"
                )

    # ------------------------------------------------------------------

    def initial(self) -> tuple[list[_StateInst], Counter]:
        """States and role assignments for the document node."""
        states: list[_StateInst] = []
        counts: Counter = Counter()
        for role in range(len(self._steps)):
            self._expand(role, 0, None, None, states, counts)
        return states, counts

    def enter_element(self, parent_states, tag: str):
        """Process an arriving element; returns (states, role counts)."""
        return self._enter(parent_states, tag, None)

    def enter_text(self, parent_states):
        """Process an arriving text node; returns (states, role counts).

        Text nodes have no children, so the returned state list is only
        meaningful for its emptiness; callers discard it.
        """
        return self._enter(parent_states, None, True)

    # ------------------------------------------------------------------

    def _enter(self, parent_states, tag, is_text):
        states: list[_StateInst] = []
        counts: Counter = Counter()
        for inst in parent_states:
            if inst.exhausted:
                continue
            step = self._steps[inst.role][inst.index]
            if step.axis is Axis.CHILD:
                if self._test(step, tag, is_text):
                    if step.position is None:
                        self._expand(
                            inst.role, inst.index + 1, tag, is_text, states, counts
                        )
                    else:
                        inst.seen += 1
                        if inst.seen == step.position:
                            inst.exhausted = True
                            self._expand(
                                inst.role,
                                inst.index + 1,
                                tag,
                                is_text,
                                states,
                                counts,
                            )
            else:  # DESCENDANT or DESCENDANT_OR_SELF: self-loop
                states.append(_StateInst(inst.role, inst.index))
                if self._test(step, tag, is_text):
                    self._expand(
                        inst.role, inst.index + 1, tag, is_text, states, counts
                    )
        return states, counts

    def _expand(self, role, index, tag, is_text, states, counts) -> None:
        """Attach state (role, index) to the current node, following
        epsilon moves of descendant-or-self steps (which may match the
        current node itself)."""
        steps = self._steps[role]
        if index == len(steps):
            counts[self.role_names[role]] += 1
            return
        step = steps[index]
        states.append(_StateInst(role, index))
        if step.axis is Axis.DESCENDANT_OR_SELF and self._test(step, tag, is_text):
            self._expand(role, index + 1, tag, is_text, states, counts)

    @staticmethod
    def _test(step: Step, tag, is_text) -> bool:
        """Does the current node satisfy the step's node test?

        ``tag=None, is_text=None`` denotes the document node, which
        satisfies only ``node()`` tests.
        """
        if is_text:
            return step.test.matches_text()
        if tag is None:
            return step.test.kind == "node"
        return step.test.matches_element(tag)
