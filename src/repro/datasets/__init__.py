"""Bundled datasets: the paper's running example documents."""

from repro.datasets.bib import (
    BIB_QUERY,
    figure3b_document,
    figure3c_document,
    make_bib_document,
)

__all__ = [
    "BIB_QUERY",
    "figure3b_document",
    "figure3c_document",
    "make_bib_document",
]
