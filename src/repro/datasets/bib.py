"""The paper's running example: bib documents and the intro query.

"Each input document contains a bib root node with ten children of the
form ⟨t⟩⟨author/⟩⟨title/⟩⟨price/⟩⟨/t⟩ where t is either tag book or
article, a total of 82 tags forming 41 document nodes." (Section 3,
Dynamic buffer management)
"""

from __future__ import annotations

#: The introductory query of the paper, verbatim (Section 1): children
#: of bib without a price, followed by all book titles.
BIB_QUERY = """
<r> {
for $bib in /bib return
(for $x in $bib/* return
if (not(exists $x/price)) then $x else (),
for $b in $bib/book return $b/title)
} </r>
"""


def make_bib_document(kinds) -> str:
    """Build a bib document with one child per entry of *kinds*.

    Each child has the paper's fixed shape
    ``<t><author></author><title></title><price></price></t>``.
    """
    children = "".join(
        f"<{kind}><author></author><title></title><price></price></{kind}>"
        for kind in kinds
    )
    return f"<bib>{children}</bib>"


def figure3b_document() -> str:
    """Figure 3(b): nine articles followed by one book."""
    return make_bib_document(["article"] * 9 + ["book"])


def figure3c_document() -> str:
    """Figure 3(c): nine books followed by one article."""
    return make_bib_document(["book"] * 9 + ["article"])
