"""Abstract syntax of the composition-free XQuery fragment.

Expressions
    ``Sequence`` — comma-joined expressions;
    ``ForExpr`` — ``for $x in <source> [where c] return e``;
    ``IfExpr`` — ``if (c) then e1 else e2``;
    ``PathExpr`` — output of the nodes selected by ``$x/path`` (or an
    absolute path);
    ``ElementConstructor`` — ``<t a="v">{ e }</t>``;
    ``TextLiteral`` / ``Empty`` — literal text, the empty sequence;
    ``SignOff`` — the buffer-preemption statement the GCX compiler
    inserts (never written by users, but parseable so the paper's
    rewritten queries round-trip).

Conditions
    ``Exists`` / ``Not`` / ``And`` / ``Or`` / ``Comparison`` over path
    and literal operands.

All nodes are immutable; rewriting passes build new trees.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xpath.ast import Path


# ---------------------------------------------------------------------------
# operands and conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PathOperand:
    """A path operand ``$var/path`` (``var=None`` for absolute paths)."""

    var: str | None
    path: Path

    def __str__(self) -> str:
        if self.var is None:
            return str(self.path)
        if not self.path.steps:
            return f"${self.var}"
        return f"${self.var}/{self.path}"


@dataclass(frozen=True)
class Literal:
    """A string or numeric literal operand."""

    value: str | float | int

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass(frozen=True)
class Aggregate:
    """An aggregation ``count|sum|avg|min|max($x/path)``.

    An *extension* over the paper's fragment ("GCX … does not yet
    cover aggregation"): aggregates appear as output expressions
    (``AggregateExpr``) or as comparison operands.  ``count`` needs
    only the matched nodes; the value aggregates need their string
    values.
    """

    func: str  # count | sum | avg | min | max
    operand: PathOperand

    def __str__(self) -> str:
        return f"{self.func}({self.operand})"


Operand = PathOperand | Literal | Aggregate


@dataclass(frozen=True)
class Exists:
    """``exists $x/path`` — true iff the path selects at least one node."""

    operand: PathOperand

    def __str__(self) -> str:
        return f"exists {self.operand}"


@dataclass(frozen=True)
class Not:
    """Logical negation."""

    operand: "Condition"

    def __str__(self) -> str:
        return f"not({self.operand})"


@dataclass(frozen=True)
class And:
    """Logical conjunction."""

    left: "Condition"
    right: "Condition"

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or:
    """Logical disjunction."""

    left: "Condition"
    right: "Condition"

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class Comparison:
    """General comparison with existential semantics.

    True iff *some* pair of values selected by the operands satisfies
    the operator — the XPath/XQuery general-comparison rule, which is
    what makes value joins (XMark Q8) expressible in the fragment.
    """

    left: Operand
    op: str  # one of = != < <= > >=
    right: Operand

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


Condition = Exists | Not | And | Or | Comparison


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Empty:
    """The empty sequence ``()``."""

    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class TextLiteral:
    """Literal text copied to the output."""

    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class PathExpr:
    """Outputs the nodes selected by ``$var/path`` (subtrees serialized)."""

    var: str | None
    path: Path

    def __str__(self) -> str:
        return str(PathOperand(self.var, self.path))


@dataclass(frozen=True)
class AggregateExpr:
    """Outputs the value of an aggregation as text."""

    aggregate: Aggregate

    def __str__(self) -> str:
        return str(self.aggregate)


@dataclass(frozen=True)
class Sequence:
    """Comma-joined subexpressions, evaluated left to right."""

    items: tuple["Expr", ...]

    def __str__(self) -> str:
        return "(" + ", ".join(str(i) for i in self.items) + ")"


@dataclass(frozen=True)
class ForExpr:
    """``for $var in <source> [where <where>] return <body>``.

    ``source`` is a path operand; after normalization it has exactly
    one step (the paper's single-step restriction) and ``where`` has
    been folded into an ``IfExpr`` body.
    """

    var: str
    source: PathOperand
    body: "Expr"
    where: Condition | None = None

    def __str__(self) -> str:
        where = f" where {self.where}" if self.where is not None else ""
        return f"for ${self.var} in {self.source}{where} return {self.body}"


@dataclass(frozen=True)
class LetExpr:
    """``let $var := <value> return <body>`` with a *scalar* value.

    An extension: the value is an aggregation or a literal (node-
    sequence lets would break composition-freeness, the fragment's
    defining restriction).  The bound variable can be output and used
    as a comparison operand.
    """

    var: str
    value: "Aggregate | Literal"
    body: "Expr"

    def __str__(self) -> str:
        return f"let ${self.var} := {self.value} return {self.body}"


@dataclass(frozen=True)
class IfExpr:
    """``if (<condition>) then <then> else <orelse>``."""

    condition: Condition
    then: "Expr"
    orelse: "Expr"

    def __str__(self) -> str:
        return f"if ({self.condition}) then {self.then} else {self.orelse}"


#: Attribute values are constant strings or attribute value templates:
#: a whole-value enclosed expression ``a="{$x/p}"`` whose selected
#: items' string values are space-joined (the XQuery AVT rule).
AttributeValue = "str | PathOperand | Aggregate"


@dataclass(frozen=True)
class ElementConstructor:
    """``<tag a="v" b="{$x/p}">{ body }</tag>``."""

    tag: str
    attributes: tuple[tuple[str, "str | PathOperand | Aggregate"], ...]
    body: "Expr"

    def __str__(self) -> str:
        parts = []
        for name, value in self.attributes:
            if isinstance(value, str):
                parts.append(f' {name}="{value}"')
            else:
                parts.append(f' {name}="{{{value}}}"')
        attrs = "".join(parts)
        return f"<{self.tag}{attrs}>{{ {self.body} }}</{self.tag}>"


@dataclass(frozen=True)
class SignOff:
    """``signOff($var/path, role)`` — removes one instance of *role*
    from every buffered node reached from the current binding of
    ``$var`` via ``path`` and triggers garbage collection."""

    var: str | None
    path: Path
    role: str

    def __str__(self) -> str:
        return f"signOff({PathOperand(self.var, self.path)}, {self.role})"


Expr = (
    Empty
    | TextLiteral
    | PathExpr
    | AggregateExpr
    | Sequence
    | ForExpr
    | LetExpr
    | IfExpr
    | ElementConstructor
    | SignOff
)


@dataclass(frozen=True)
class Query:
    """A complete query: one top-level expression."""

    body: Expr

    def __str__(self) -> str:
        return str(self.body)


# ---------------------------------------------------------------------------
# traversal helpers
# ---------------------------------------------------------------------------


def child_expressions(expr: Expr) -> tuple[Expr, ...]:
    """Immediate subexpressions of *expr* (conditions excluded)."""
    if isinstance(expr, Sequence):
        return expr.items
    if isinstance(expr, (ForExpr, LetExpr)):
        return (expr.body,)
    if isinstance(expr, IfExpr):
        return (expr.then, expr.orelse)
    if isinstance(expr, ElementConstructor):
        return (expr.body,)
    return ()


def iter_expressions(expr: Expr):
    """Yield *expr* and all nested expressions, preorder."""
    yield expr
    for child in child_expressions(expr):
        yield from iter_expressions(child)


def iter_conditions(expr: Expr):
    """Yield every condition appearing in *expr* or below."""
    for sub in iter_expressions(expr):
        if isinstance(sub, IfExpr):
            yield sub.condition
        elif isinstance(sub, ForExpr) and sub.where is not None:
            yield sub.where


def condition_operands(condition: Condition):
    """Yield every ``PathOperand`` inside *condition*."""
    if isinstance(condition, Exists):
        yield condition.operand
    elif isinstance(condition, Not):
        yield from condition_operands(condition.operand)
    elif isinstance(condition, (And, Or)):
        yield from condition_operands(condition.left)
        yield from condition_operands(condition.right)
    elif isinstance(condition, Comparison):
        for operand in (condition.left, condition.right):
            if isinstance(operand, PathOperand):
                yield operand
            elif isinstance(operand, Aggregate):
                yield operand.operand
