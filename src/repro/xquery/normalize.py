"""Lowering of surface queries to the GCX core form.

The static analysis of the paper operates on queries whose for-loops
are *single-step*: ``for $x in $y/axis::nu return e`` (footnote 1 of
the paper).  Users may write multi-step sources and ``where`` clauses;
this pass rewrites them:

* ``for $x in $y/a/b`` becomes
  ``for $g in $y/a return for $x in $g/b`` with a fresh ``$g``;
* ``for $x in s where c return e`` becomes
  ``for $x in s return if (c) then e else ()``;
* nested re-use of a variable name is alpha-renamed apart so that every
  binding in the query has a unique name (the role table and the
  signOff placement key on variable names).

The pass also validates the composition-free restrictions: every
variable is bound before use, for-sources select elements (not
attributes), and sources are non-empty paths.
"""

from __future__ import annotations

from repro.xpath.ast import Axis, Path
from repro.xquery import ast as q


class NormalizationError(ValueError):
    """Raised when a query violates the fragment's restrictions."""


class _Normalizer:
    def __init__(self):
        self._fresh = 0
        self._used: set[str] = set()
        # renamed names of let-bound scalar variables: these cannot be
        # navigated from with a path
        self._scalars: set[str] = set()

    def fresh_var(self, base: str) -> str:
        self._fresh += 1
        name = f"{base}__{self._fresh}"
        self._used.add(name)
        return name

    # ------------------------------------------------------------------

    def expr(self, expr: q.Expr, scope: dict[str, str]) -> q.Expr:
        if isinstance(expr, q.Sequence):
            return q.Sequence(tuple(self.expr(item, scope) for item in expr.items))
        if isinstance(expr, q.ForExpr):
            return self.for_expr(expr, scope)
        if isinstance(expr, q.LetExpr):
            return self.let_expr(expr, scope)
        if isinstance(expr, q.IfExpr):
            return q.IfExpr(
                self.condition(expr.condition, scope),
                self.expr(expr.then, scope),
                self.expr(expr.orelse, scope),
            )
        if isinstance(expr, q.ElementConstructor):
            attributes = []
            for name, value in expr.attributes:
                if isinstance(value, q.PathOperand):
                    value = self.operand(value, scope)
                elif isinstance(value, q.Aggregate):
                    value = self.aggregate(value, scope)
                attributes.append((name, value))
            return q.ElementConstructor(
                expr.tag, tuple(attributes), self.expr(expr.body, scope)
            )
        if isinstance(expr, q.PathExpr):
            operand = self.operand(q.PathOperand(expr.var, expr.path), scope)
            return q.PathExpr(operand.var, operand.path)
        if isinstance(expr, q.AggregateExpr):
            return q.AggregateExpr(self.aggregate(expr.aggregate, scope))
        if isinstance(expr, q.SignOff):
            operand = self.operand(q.PathOperand(expr.var, expr.path), scope)
            return q.SignOff(operand.var, operand.path, expr.role)
        if isinstance(expr, (q.Empty, q.TextLiteral)):
            return expr
        raise NormalizationError(f"unsupported expression {expr!r}")

    def for_expr(self, expr: q.ForExpr, scope: dict[str, str]) -> q.Expr:
        source = self.operand(expr.source, scope)
        if not source.path.steps:
            raise NormalizationError(
                f"for ${expr.var}: source must be a non-empty path"
            )
        if any(step.axis is Axis.ATTRIBUTE for step in source.path.steps):
            raise NormalizationError(
                f"for ${expr.var}: cannot iterate over attributes"
            )
        # Split a multi-step source into a chain of fresh single-step
        # loops; the innermost keeps the user's variable (renamed apart
        # if it shadows an outer binding).
        # Every binder in the normalized query gets a globally unique
        # name: the role table and signOff placement key on variables,
        # and sequential sibling loops may legitimately reuse a name.
        user_var = expr.var
        if user_var in self._used or user_var in scope:
            user_var = self.fresh_var(expr.var)
        else:
            self._used.add(user_var)
        chain: list[tuple[str, q.PathOperand]] = []
        current_var = source.var
        steps = source.path.steps
        for index, step in enumerate(steps):
            last = index == len(steps) - 1
            var = user_var if last else self.fresh_var(expr.var)
            if current_var is None:
                operand = q.PathOperand(None, Path((step,), absolute=True))
            else:
                operand = q.PathOperand(current_var, Path((step,), absolute=False))
            chain.append((var, operand))
            current_var = var
        inner_scope = dict(scope)
        inner_scope[expr.var] = user_var
        body = self.expr(expr.body, inner_scope)
        if expr.where is not None:
            body = q.IfExpr(
                self.condition(expr.where, inner_scope), body, q.Empty()
            )
        result: q.Expr = body
        for var, operand in reversed(chain):
            result = q.ForExpr(var, operand, result)
        return result

    def let_expr(self, expr: q.LetExpr, scope: dict[str, str]) -> q.LetExpr:
        if isinstance(expr.value, q.Aggregate):
            value = self.aggregate(expr.value, scope)
        elif isinstance(expr.value, q.Literal):
            value = expr.value
        else:
            raise NormalizationError(
                f"let ${expr.var}: value must be an aggregate or a literal"
            )
        user_var = expr.var
        if user_var in self._used or user_var in scope:
            user_var = self.fresh_var(expr.var)
        else:
            self._used.add(user_var)
        self._scalars.add(user_var)
        inner_scope = dict(scope)
        inner_scope[expr.var] = user_var
        return q.LetExpr(user_var, value, self.expr(expr.body, inner_scope))

    def condition(self, condition: q.Condition, scope: dict[str, str]) -> q.Condition:
        if isinstance(condition, q.Exists):
            return q.Exists(self.operand(condition.operand, scope))
        if isinstance(condition, q.Not):
            return q.Not(self.condition(condition.operand, scope))
        if isinstance(condition, q.And):
            return q.And(
                self.condition(condition.left, scope),
                self.condition(condition.right, scope),
            )
        if isinstance(condition, q.Or):
            return q.Or(
                self.condition(condition.left, scope),
                self.condition(condition.right, scope),
            )
        if isinstance(condition, q.Comparison):
            left = condition.left
            right = condition.right
            if isinstance(left, q.PathOperand):
                left = self.operand(left, scope)
            elif isinstance(left, q.Aggregate):
                left = self.aggregate(left, scope)
            if isinstance(right, q.PathOperand):
                right = self.operand(right, scope)
            elif isinstance(right, q.Aggregate):
                right = self.aggregate(right, scope)
            return q.Comparison(left, condition.op, right)
        raise NormalizationError(f"unsupported condition {condition!r}")

    def aggregate(self, aggregate: q.Aggregate, scope: dict[str, str]) -> q.Aggregate:
        operand = self.operand(aggregate.operand, scope)
        if not operand.path.steps:
            raise NormalizationError(
                f"{aggregate.func}(${operand.var}): aggregate over a bare "
                "variable is not supported; aggregate over a path"
            )
        return q.Aggregate(aggregate.func, operand)

    def operand(self, operand: q.PathOperand, scope: dict[str, str]) -> q.PathOperand:
        if operand.var is None:
            if not operand.path.absolute:
                raise NormalizationError(
                    f"relative path {operand.path} without a variable"
                )
            return operand
        if operand.var not in scope:
            raise NormalizationError(f"unbound variable ${operand.var}")
        renamed = scope[operand.var]
        if renamed in self._scalars and operand.path.steps:
            raise NormalizationError(
                f"${operand.var} is a scalar let binding; "
                f"cannot navigate {operand.path} from it"
            )
        return q.PathOperand(renamed, operand.path)


def normalize_query(query: q.Query) -> q.Query:
    """Lower *query* to the single-step core form.

    Raises:
        NormalizationError: if the query violates fragment restrictions
            (unbound variables, attribute iteration, empty sources).
    """
    normalizer = _Normalizer()
    return q.Query(normalizer.expr(query.body, {}))
