"""Indented pretty-printer for query ASTs.

Used by the CLI (``gcx explain``) to show the compiled, rewritten query
with its ``signOff`` statements — the textual counterpart of the demo's
role browser (paper, Figure 3(a)).
"""

from __future__ import annotations

from repro.xquery import ast as q

_INDENT = "  "


def pretty_print(node: q.Query | q.Expr, indent: int = 0) -> str:
    """Render *node* as indented multi-line text."""
    if isinstance(node, q.Query):
        return pretty_print(node.body, indent)
    pad = _INDENT * indent
    if isinstance(node, q.Sequence):
        inner = ",\n".join(pretty_print(item, indent + 1) for item in node.items)
        return f"{pad}(\n{inner}\n{pad})"
    if isinstance(node, q.ForExpr):
        where = f" where {node.where}" if node.where is not None else ""
        header = f"{pad}for ${node.var} in {node.source}{where} return"
        return header + "\n" + pretty_print(node.body, indent + 1)
    if isinstance(node, q.LetExpr):
        header = f"{pad}let ${node.var} := {node.value} return"
        return header + "\n" + pretty_print(node.body, indent + 1)
    if isinstance(node, q.IfExpr):
        lines = [
            f"{pad}if ({node.condition}) then",
            pretty_print(node.then, indent + 1),
            f"{pad}else",
            pretty_print(node.orelse, indent + 1),
        ]
        return "\n".join(lines)
    if isinstance(node, q.ElementConstructor):
        attrs = "".join(f' {k}="{v}"' for k, v in node.attributes)
        if isinstance(node.body, q.Empty):
            return f"{pad}<{node.tag}{attrs}/>"
        inner = pretty_print(node.body, indent + 1)
        return f"{pad}<{node.tag}{attrs}> {{\n{inner}\n{pad}}} </{node.tag}>"
    return pad + str(node)
