"""Scannerless recursive-descent parser for the XQuery fragment.

Accepted surface syntax (a superset of the paper's core form, lowered
by :mod:`repro.xquery.normalize`)::

    expr      := single (',' single)*
    single    := 'for' '$'NAME 'in' operand ('where' cond)? 'return' single
               | 'if' '(' cond ')' 'then' single 'else' single
               | 'signOff' '(' operand ',' NAME ')'
               | '(' expr? ')'
               | constructor
               | operand                      # node output
               | STRING
    cond      := andcond ('or' andcond)*
    andcond   := atom ('and' atom)*
    atom      := 'not' '('? cond ')'?
               | 'exists' '('? operand ')'?
               | '(' cond ')'
               | operand (CMP operand)?
    operand   := '$'NAME ('/' path)? | '/' path | STRING | NUMBER
    constructor := '<' NAME (NAME '=' STRING)* '/>'
               | '<' NAME (NAME '=' STRING)* '>' content '</' NAME '>'
    content   := (TEXT | '{' expr '}' | constructor)*

Comparison operators: ``= != < <= > >=`` and the keyword forms
``eq ne lt le gt ge``.  XQuery comments ``(: ... :)`` are skipped.
"""

from __future__ import annotations

import re

from repro.xpath.ast import Path
from repro.xpath.parser import XPathParseError, parse_path
from repro.xquery import ast as q

_KEYWORD_CMP = {"eq": "=", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}

_AGGREGATE_FUNCS = ("count", "sum", "avg", "min", "max")

_NAME_RE = re.compile(r"[\w.-]+")

# One or more /step or //step continuations; steps may carry an axis
# prefix, an @ shorthand, a text()/node() test, a wildcard, and a [n]
# predicate.  Used to find the textual extent of a path before handing
# it to the XPath parser.
_PATH_CONT_RE = re.compile(
    r"""(?: /(?:/)?
            (?: (?:child|descendant-or-self|descendant|self|attribute)::)?
            @?
            (?: (?:text|node)\(\s*\) | \* | [\w.-]+ )
            (?: \[\s*\d+\s*\] )?
        )+""",
    re.VERBOSE,
)


class XQueryParseError(ValueError):
    """Raised when the query text is outside the accepted fragment."""

    def __init__(self, message: str, offset: int | None = None):
        self.offset = offset
        if offset is not None:
            message = f"{message} (at offset {offset})"
        super().__init__(message)


class _Cursor:
    """Position tracking plus low-level matching over the query text."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> XQueryParseError:
        return XQueryParseError(message, self.pos)

    def skip_ws(self) -> None:
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif text.startswith("(:", self.pos):
                end = text.find(":)", self.pos + 2)
                if end == -1:
                    raise self.error("unterminated comment")
                self.pos = end + 2
            else:
                return

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def peek(self, literal: str) -> bool:
        self.skip_ws()
        return self.text.startswith(literal, self.pos)

    def match(self, literal: str) -> bool:
        if self.peek(literal):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.match(literal):
            raise self.error(f"expected {literal!r}")

    def peek_keyword(self, word: str) -> bool:
        self.skip_ws()
        end = self.pos + len(word)
        if not self.text.startswith(word, self.pos):
            return False
        return end >= len(self.text) or not (
            self.text[end].isalnum() or self.text[end] in "_-"
        )

    def match_keyword(self, word: str) -> bool:
        if self.peek_keyword(word):
            self.pos += len(word)
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.match_keyword(word):
            raise self.error(f"expected keyword {word!r}")

    def match_name(self) -> str | None:
        self.skip_ws()
        m = _NAME_RE.match(self.text, self.pos)
        if m is None:
            return None
        self.pos = m.end()
        return m.group(0)

    def expect_name(self) -> str:
        name = self.match_name()
        if name is None:
            raise self.error("expected a name")
        return name


class _Parser:
    def __init__(self, text: str):
        self.cur = _Cursor(text)

    # -- entry ---------------------------------------------------------

    def parse_query(self) -> q.Query:
        body = self.parse_expr()
        if not self.cur.at_end():
            raise self.cur.error("trailing input after query")
        return q.Query(body)

    # -- expressions -----------------------------------------------------

    def parse_expr(self) -> q.Expr:
        items = [self.parse_single()]
        while self.cur.match(","):
            items.append(self.parse_single())
        if len(items) == 1:
            return items[0]
        return q.Sequence(tuple(items))

    def parse_single(self) -> q.Expr:
        cur = self.cur
        if cur.peek_keyword("for"):
            return self._parse_for()
        if cur.peek_keyword("let"):
            return self._parse_let()
        if cur.peek_keyword("if"):
            return self._parse_if()
        if cur.peek_keyword("signOff"):
            return self._parse_signoff()
        for func in _AGGREGATE_FUNCS:
            if cur.peek_keyword(func):
                return q.AggregateExpr(self._parse_aggregate())
        if cur.peek("("):
            cur.expect("(")
            if cur.match(")"):
                return q.Empty()
            inner = self.parse_expr()
            cur.expect(")")
            return inner
        cur.skip_ws()
        if cur.pos < len(cur.text) and cur.text[cur.pos] == "<":
            return self._parse_constructor()
        if cur.peek('"') or cur.peek("'"):
            return q.TextLiteral(self._parse_string())
        operand = self._parse_path_operand()
        return q.PathExpr(operand.var, operand.path)

    def _parse_for(self) -> q.ForExpr:
        cur = self.cur
        cur.expect_keyword("for")
        cur.expect("$")
        var = cur.expect_name()
        cur.expect_keyword("in")
        source = self._parse_path_operand()
        where = None
        if cur.match_keyword("where"):
            where = self.parse_condition()
        cur.expect_keyword("return")
        body = self.parse_single()
        return q.ForExpr(var, source, body, where)

    def _parse_let(self) -> q.LetExpr:
        cur = self.cur
        cur.expect_keyword("let")
        cur.expect("$")
        var = cur.expect_name()
        cur.expect(":=")
        value = self._parse_operand()
        if isinstance(value, q.PathOperand):
            raise cur.error(
                "let binds scalar values only: use an aggregate "
                "(count/sum/avg/min/max) or a literal"
            )
        cur.expect_keyword("return")
        body = self.parse_single()
        return q.LetExpr(var, value, body)

    def _parse_if(self) -> q.IfExpr:
        cur = self.cur
        cur.expect_keyword("if")
        cur.expect("(")
        condition = self.parse_condition()
        cur.expect(")")
        cur.expect_keyword("then")
        then = self.parse_single()
        cur.expect_keyword("else")
        orelse = self.parse_single()
        return q.IfExpr(condition, then, orelse)

    def _parse_aggregate(self) -> q.Aggregate:
        cur = self.cur
        func = None
        for candidate in _AGGREGATE_FUNCS:
            if cur.match_keyword(candidate):
                func = candidate
                break
        if func is None:
            raise cur.error("expected an aggregation function")
        cur.expect("(")
        operand = self._parse_path_operand()
        cur.expect(")")
        return q.Aggregate(func, operand)

    def _parse_signoff(self) -> q.SignOff:
        cur = self.cur
        cur.expect_keyword("signOff")
        cur.expect("(")
        operand = self._parse_path_operand()
        cur.expect(",")
        role = cur.expect_name()
        cur.expect(")")
        return q.SignOff(operand.var, operand.path, role)

    # -- constructors ------------------------------------------------------

    def _parse_constructor(self) -> q.ElementConstructor:
        cur = self.cur
        cur.expect("<")
        tag = cur.expect_name()
        attributes: list[tuple[str, str]] = []
        while True:
            cur.skip_ws()
            if cur.match("/>"):
                return q.ElementConstructor(tag, tuple(attributes), q.Empty())
            if cur.match(">"):
                break
            name = cur.expect_name()
            cur.expect("=")
            attributes.append((name, self._parse_attribute_value()))
        body = self._parse_constructor_content(tag)
        return q.ElementConstructor(tag, tuple(attributes), body)

    def _parse_attribute_value(self):
        """A constant string or an attribute value template ``{expr}``.

        Only whole-value templates are supported (the common XMark
        shape ``person="{$p/name/text()}"``), not mixed text/template
        concatenation.
        """
        raw = self._parse_string()
        stripped = raw.strip()
        if not (stripped.startswith("{") and stripped.endswith("}")):
            return raw
        inner = stripped[1:-1]
        sub = _Parser(inner)
        operand = sub._parse_operand()
        if not sub.cur.at_end():
            raise sub.cur.error(
                "attribute value templates support a single path or "
                "aggregate expression"
            )
        if isinstance(operand, q.Literal):
            return str(operand.value)
        return operand

    def _parse_constructor_content(self, tag: str) -> q.Expr:
        cur = self.cur
        items: list[q.Expr] = []
        while True:
            if cur.pos >= len(cur.text):
                raise cur.error(f"unterminated constructor <{tag}>")
            close = f"</{tag}"
            if cur.text.startswith(close, cur.pos):
                cur.pos += len(close)
                cur.skip_ws()
                cur.expect(">")
                break
            ch = cur.text[cur.pos]
            if ch == "{":
                cur.pos += 1
                items.append(self.parse_expr())
                cur.expect("}")
            elif ch == "<":
                items.append(self._parse_constructor())
            else:
                start = cur.pos
                while cur.pos < len(cur.text) and cur.text[cur.pos] not in "<{":
                    cur.pos += 1
                text = cur.text[start : cur.pos]
                if text.strip():
                    items.append(q.TextLiteral(text.strip()))
        if not items:
            return q.Empty()
        if len(items) == 1:
            return items[0]
        return q.Sequence(tuple(items))

    # -- conditions -------------------------------------------------------

    def parse_condition(self) -> q.Condition:
        left = self._parse_and_condition()
        while self.cur.match_keyword("or"):
            right = self._parse_and_condition()
            left = q.Or(left, right)
        return left

    def _parse_and_condition(self) -> q.Condition:
        left = self._parse_atom_condition()
        while self.cur.match_keyword("and"):
            right = self._parse_atom_condition()
            left = q.And(left, right)
        return left

    def _parse_atom_condition(self) -> q.Condition:
        cur = self.cur
        if cur.match_keyword("not"):
            if cur.match("("):
                inner = self.parse_condition()
                cur.expect(")")
                return q.Not(inner)
            return q.Not(self._parse_atom_condition())
        if cur.match_keyword("exists"):
            if cur.match("("):
                operand = self._parse_path_operand()
                cur.expect(")")
            else:
                operand = self._parse_path_operand()
            return q.Exists(operand)
        if cur.peek("("):
            cur.expect("(")
            inner = self.parse_condition()
            cur.expect(")")
            return inner
        left = self._parse_operand()
        op = self._match_comparison_op()
        if op is None:
            if isinstance(left, q.PathOperand):
                # Effective boolean value of a path = existence test.
                return q.Exists(left)
            raise cur.error("expected a comparison operator")
        right = self._parse_operand()
        return q.Comparison(left, op, right)

    def _match_comparison_op(self) -> str | None:
        cur = self.cur
        cur.skip_ws()
        for symbol in ("<=", ">=", "!=", "=", "<", ">"):
            if cur.match(symbol):
                return symbol
        for keyword, symbol in _KEYWORD_CMP.items():
            if cur.match_keyword(keyword):
                return symbol
        return None

    # -- operands ---------------------------------------------------------

    def _parse_operand(self) -> q.PathOperand | q.Literal | q.Aggregate:
        cur = self.cur
        cur.skip_ws()
        for func in _AGGREGATE_FUNCS:
            if cur.peek_keyword(func):
                return self._parse_aggregate()
        if cur.peek('"') or cur.peek("'"):
            return q.Literal(self._parse_string())
        if cur.pos < len(cur.text) and (
            cur.text[cur.pos].isdigit() or cur.text[cur.pos] == "-"
        ):
            return q.Literal(self._parse_number())
        return self._parse_path_operand()

    def _parse_path_operand(self) -> q.PathOperand:
        cur = self.cur
        cur.skip_ws()
        if cur.match("$"):
            var = cur.expect_name()
            path = self._match_path_continuation()
            return q.PathOperand(var, path)
        if cur.pos < len(cur.text) and cur.text[cur.pos] == "/":
            m = _PATH_CONT_RE.match(cur.text, cur.pos)
            if m is None:
                # A bare "/" root path.
                cur.pos += 1
                return q.PathOperand(None, Path((), absolute=True))
            cur.pos = m.end()
            try:
                return q.PathOperand(None, parse_path(m.group(0)))
            except XPathParseError as exc:
                raise cur.error(str(exc)) from exc
        raise cur.error("expected a variable or path")

    def _match_path_continuation(self) -> Path:
        cur = self.cur
        m = _PATH_CONT_RE.match(cur.text, cur.pos)
        if m is None:
            return Path((), absolute=False)
        cur.pos = m.end()
        # m starts with '/', but relative to the variable; strip it so
        # the XPath parser sees a relative path.
        text = m.group(0)
        relative = text[2:] if text.startswith("//") else text[1:]
        if text.startswith("//"):
            relative = "descendant-or-self::node()/" + relative
        try:
            return parse_path(relative)
        except XPathParseError as exc:
            raise cur.error(str(exc)) from exc

    def _parse_string(self) -> str:
        cur = self.cur
        cur.skip_ws()
        if cur.pos >= len(cur.text) or cur.text[cur.pos] not in "\"'":
            raise cur.error("expected a string literal")
        quote = cur.text[cur.pos]
        end = cur.text.find(quote, cur.pos + 1)
        if end == -1:
            raise cur.error("unterminated string literal")
        value = cur.text[cur.pos + 1 : end]
        cur.pos = end + 1
        return value

    def _parse_number(self) -> float | int:
        cur = self.cur
        m = re.match(r"-?\d+(\.\d+)?", cur.text[cur.pos :])
        if m is None:
            raise cur.error("expected a number")
        cur.pos += m.end()
        text = m.group(0)
        return float(text) if "." in text else int(text)


def parse_query(text: str) -> q.Query:
    """Parse *text* into a :class:`~repro.xquery.ast.Query`.

    Raises:
        XQueryParseError: on syntax errors or constructs outside the
            fragment.
    """
    return _Parser(text).parse_query()
