"""Composition-free XQuery fragment: AST, parser, normalizer.

GCX "supports the practical fragment of composition-free XQuery with
single-step nested for-loops, conditions, and joins, but does not yet
cover aggregation" (paper, Section 3).  The surface syntax accepted
here is slightly friendlier — multi-step ``for`` sources and ``where``
clauses — and :mod:`repro.xquery.normalize` lowers it to the core form
(single-step loops, ``if`` conditions) the static analysis operates on.
"""

from repro.xquery.ast import (
    And,
    Comparison,
    ElementConstructor,
    Empty,
    Exists,
    ForExpr,
    IfExpr,
    Literal,
    Not,
    Or,
    PathExpr,
    Query,
    Sequence,
    SignOff,
    TextLiteral,
)
from repro.xquery.parser import XQueryParseError, parse_query
from repro.xquery.normalize import NormalizationError, normalize_query
from repro.xquery.pretty import pretty_print

__all__ = [
    "And",
    "Comparison",
    "ElementConstructor",
    "Empty",
    "Exists",
    "ForExpr",
    "IfExpr",
    "Literal",
    "NormalizationError",
    "Not",
    "Or",
    "PathExpr",
    "Query",
    "Sequence",
    "SignOff",
    "TextLiteral",
    "XQueryParseError",
    "normalize_query",
    "parse_query",
    "pretty_print",
]
