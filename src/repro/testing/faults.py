"""Deterministic fault injection for crash-recovery testing.

A :class:`FaultPlan` is parsed from a compact ``key=value`` spec
(``gcx serve --fault-plan "seed=42,kill_at=100000"``) and threaded into
the server's data path, where it can

* SIGKILL the worker process the moment its fed input crosses a byte
  offset (``kill_at``) — the crash the checkpoint/resume machinery of
  DESIGN.md §16 exists to survive;
* fail a ``feed()`` mid-document with :class:`InjectedFault`
  (``fail_feed_at``), exercising the ERROR/drain path;
* delay, duplicate or truncate outbound RESULT frames
  (``delay_result_every``/``delay_result_s``,
  ``duplicate_result_every``, ``truncate_result_at``) — truncation
  also severs the connection, simulating a worker dying mid-frame;
  ``truncate_result_times=N`` re-arms it every further
  ``truncate_result_at`` output bytes, so one plan can crash a
  resilient client repeatedly (multi-failure resume testing).

Everything is deterministic: thresholds are byte offsets and frame
counters, and the only randomness is a :class:`random.Random` seeded
from the spec, so a failing run replays exactly.  In a supervised pool
every restarted worker re-parses the same spec; the optional *marker
path* (a file created with ``O_EXCL`` in the pool's control directory)
makes ``kill_at`` fire **once per plan** rather than once per process,
so a resumed session is not killed again at the same offset forever.

No engine state is touched here — the plan only observes byte counts
the server hands it and acts on the process/connection level.
"""

from __future__ import annotations

import os
import random
import signal
from typing import NamedTuple


class InjectedFault(RuntimeError):
    """A failure the fault plan injected on purpose."""


class ResultAction(NamedTuple):
    """What to do with one outbound RESULT fragment."""

    delay_s: float  #: sleep this long before sending (0.0 = no delay)
    truncate_to: int | None  #: send only this many payload bytes, then
    #:                          sever the connection (None = send whole)
    duplicate: bool  #: send the fragment twice


_INT_KEYS = frozenset(
    {
        "seed",
        "kill_at",
        "fail_feed_at",
        "delay_result_every",
        "duplicate_result_every",
        "truncate_result_at",
        "truncate_result_times",
    }
)
_FLOAT_KEYS = frozenset({"delay_result_s"})


class FaultPlan:
    """One parsed fault spec plus its (deterministic) runtime state."""

    def __init__(
        self,
        seed: int = 0,
        kill_at: int | None = None,
        fail_feed_at: int | None = None,
        delay_result_every: int | None = None,
        delay_result_s: float = 0.01,
        duplicate_result_every: int | None = None,
        truncate_result_at: int | None = None,
        truncate_result_times: int | None = None,
        marker_path: str | None = None,
    ):
        self.seed = seed
        self.kill_at = kill_at
        self.fail_feed_at = fail_feed_at
        self.delay_result_every = delay_result_every
        self.delay_result_s = delay_result_s
        self.duplicate_result_every = duplicate_result_every
        self.truncate_result_at = truncate_result_at
        self.truncate_result_times = truncate_result_times
        self.marker_path = marker_path
        #: seeded source for any jitter a harness user wants; the
        #: built-in injectors are threshold-driven and never draw from
        #: it implicitly, so replays stay exact
        self.rng = random.Random(seed)
        self._fed_bytes = 0
        self._feed_failed = False
        self._result_count = 0
        self._result_bytes = 0
        self._truncations = 0

    @classmethod
    def parse(cls, spec: str, marker_path: str | None = None) -> "FaultPlan":
        """Build a plan from ``"key=value,key=value"`` (see module doc)."""
        kwargs: dict = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(f"fault spec item {item!r} is not key=value")
            if key in _INT_KEYS:
                kwargs[key] = int(value)
            elif key in _FLOAT_KEYS:
                kwargs[key] = float(value)
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        return cls(marker_path=marker_path, **kwargs)

    def describe(self) -> str:
        """The spec this plan round-trips to (marker path excluded)."""
        parts = [f"seed={self.seed}"]
        for key in sorted(_INT_KEYS | _FLOAT_KEYS):
            if key == "seed":
                continue
            value = getattr(self, key)
            if value is not None and (
                key != "delay_result_s" or self.delay_result_every is not None
            ):
                parts.append(f"{key}={value}")
        return ",".join(parts)

    # ------------------------------------------------------------------
    # injectors (called from the server's data path)
    # ------------------------------------------------------------------

    def on_feed(self, chunk_bytes: int) -> None:
        """Account one inbound CHUNK; maybe fail it, maybe die.

        Raises :class:`InjectedFault` once when ``fail_feed_at`` is
        crossed; SIGKILLs the current process when ``kill_at`` is
        crossed (and the marker, if any, was not already claimed) —
        that call never returns.
        """
        self._fed_bytes += chunk_bytes
        if (
            self.fail_feed_at is not None
            and not self._feed_failed
            and self._fed_bytes >= self.fail_feed_at
        ):
            self._feed_failed = True
            raise InjectedFault(
                f"injected feed failure at input byte {self._fed_bytes}"
            )
        if (
            self.kill_at is not None
            and self._fed_bytes >= self.kill_at
            and self._claim_marker()
        ):
            os.kill(os.getpid(), signal.SIGKILL)

    def on_result(self, part_bytes: int) -> ResultAction:
        """Decide the fate of one outbound RESULT fragment."""
        self._result_count += 1
        delay = 0.0
        if (
            self.delay_result_every
            and self._result_count % self.delay_result_every == 0
        ):
            delay = self.delay_result_s
        truncate_to = None
        # the k-th truncation fires when cumulative output crosses
        # k * truncate_result_at, up to truncate_result_times (default 1)
        threshold = (
            None
            if self.truncate_result_at is None
            else self.truncate_result_at * (self._truncations + 1)
        )
        if (
            threshold is not None
            and self._truncations < (self.truncate_result_times or 1)
            and self._result_bytes + part_bytes >= threshold
        ):
            self._truncations += 1
            truncate_to = max(0, threshold - self._result_bytes)
            truncate_to = min(truncate_to, max(0, part_bytes - 1))
        self._result_bytes += part_bytes
        duplicate = bool(
            self.duplicate_result_every
            and self._result_count % self.duplicate_result_every == 0
        )
        return ResultAction(delay, truncate_to, duplicate)

    def _claim_marker(self) -> bool:
        """Atomically claim the once-per-plan kill (always true when no
        marker path was configured — single-process usage)."""
        if self.marker_path is None:
            return True
        try:
            fd = os.open(
                self.marker_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True
