"""Test-support tooling shipped with the engine (not test cases).

:mod:`repro.testing.faults` is the deterministic fault-injection
harness behind ``gcx serve --fault-plan`` (DESIGN.md §16).
"""
