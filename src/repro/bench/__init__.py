"""Benchmark harness: engine runners, buffer profiles, reporting.

Used by the ``benchmarks/`` suite to regenerate the paper's Figures 3
and 4 (buffer profiles) and the Figure 5 comparison table, and by the
examples for ad-hoc exploration.
"""

from repro.bench.harness import (
    BenchResult,
    buffer_profile,
    compare_engines,
    run_engine,
)
from repro.bench.reporting import ascii_plot, format_table

__all__ = [
    "BenchResult",
    "ascii_plot",
    "buffer_profile",
    "compare_engines",
    "format_table",
    "run_engine",
]
