"""Reporting: tables, ASCII buffer plots, and machine-readable JSON.

The demo paper presents its results as buffer plots (node count over
tokens processed) and a cell table; these helpers render both on a
terminal so the benchmark scripts can print exactly the rows and series
the paper reports.  :func:`write_bench_json` additionally persists
measurements (``BENCH_*.json``) so the performance trajectory of the
reproduction is diffable across pull requests.
"""

from __future__ import annotations

import json

#: schema tag stamped into every BENCH_*.json payload
BENCH_JSON_SCHEMA = "gcx-bench/v1"


def throughput_entry(
    seconds: float, input_bytes: int, peak_buffer_nodes: int = 0, **extra
) -> dict:
    """One BENCH_*.json measurement entry.

    Stream-style measurements (``input_bytes > 0``) report ``mb_per_s``;
    compile-style measurements process no input bytes and report
    ``ops_per_s`` instead — an entry claiming ``input_bytes: 0,
    mb_per_s: 0.0`` would read as "infinitely slow" in a perf diff when
    the operation in fact took microseconds.  Both rates guard the
    division: a clock too coarse to observe the run yields a rate of
    ``0.0`` rather than a ``ZeroDivisionError``.
    """
    entry = {
        # compile-style entries run in microseconds: keep enough digits
        # that the recorded time is not rounded to a flat 0.0
        "seconds": round(seconds, 5 if input_bytes else 9),
        "peak_buffer_nodes": peak_buffer_nodes,
    }
    if input_bytes:
        entry["input_bytes"] = input_bytes
        entry["mb_per_s"] = (
            round(input_bytes / 1e6 / seconds, 3) if seconds else 0.0
        )
    else:
        entry["ops_per_s"] = round(1.0 / seconds, 1) if seconds else 0.0
    entry.update(extra)
    return entry


def write_bench_json(path: str, entries, meta: dict | None = None) -> str:
    """Write benchmark *entries* to *path* as a stable JSON document.

    Args:
        path: output file; conventionally ``BENCH_<topic>.json`` at the
            repository root so per-PR diffs show the perf trajectory.
        entries: a list of JSON-ready dicts (e.g.
            :meth:`repro.bench.harness.BenchResult.as_record`) or a
            name → dict mapping.
        meta: optional extra top-level fields (document sizes, config).

    Returns:
        *path*, for chaining into report summaries.
    """
    payload = {"schema": BENCH_JSON_SCHEMA}
    if meta:
        payload.update(meta)
    payload["entries"] = entries
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def merge_bench_json(path: str, entries: dict, meta: dict | None = None) -> str:
    """Merge *entries* (a name → dict mapping) into an existing
    ``BENCH_*.json``, keeping every entry other benchmarks recorded.

    A filtered benchmark run — or a different benchmark module writing
    to the same file, like ``benchmarks/bench_server.py`` — must not
    silently drop the measurements it did not produce.  Missing or
    unreadable files start from scratch.
    """
    merged: dict = {}
    try:
        with open(path, encoding="utf-8") as handle:
            existing = json.load(handle).get("entries")
            if isinstance(existing, dict):
                merged.update(existing)
    except (OSError, ValueError):
        pass
    merged.update(entries)
    return write_bench_json(path, merged, meta)


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Monospace table with column alignment."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def ascii_plot(
    series: list[int],
    width: int = 72,
    height: int = 16,
    title: str = "",
    x_label: str = "tokens processed",
    y_label: str = "nodes buffered",
) -> str:
    """Scatter plot of a buffer profile, like the paper's Figures 3/4.

    The series is downsampled to *width* columns, each column showing
    the maximum of its bucket (peaks matter for buffer plots).
    """
    if not series:
        return f"{title}\n(empty series)"
    peak = max(series) or 1
    columns = min(width, len(series))
    bucket = len(series) / columns
    sampled = []
    for col in range(columns):
        start = int(col * bucket)
        end = max(start + 1, int((col + 1) * bucket))
        sampled.append(max(series[start:end]))
    grid = [[" "] * columns for _ in range(height)]
    for col, value in enumerate(sampled):
        row = round((value / peak) * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    label_width = len(str(peak))
    for i, row in enumerate(grid):
        if i == 0:
            label = str(peak).rjust(label_width)
        elif i == height - 1:
            label = "0".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * columns)
    lines.append(
        " " * label_width
        + f"  0 ... {len(series)} {x_label}   (y: {y_label}, peak {peak})"
    )
    return "\n".join(lines)
