"""Engine runners and measurement collection for the benchmarks.

All runners follow the compile-once / stream-many discipline: the
query is compiled to a plan a single time, then timed runs stream the
document through that shared plan — either in one piece (pull mode) or
in fixed-size chunks through a :class:`~repro.core.session.StreamSession`
(push mode, ``chunk_size=``), which is how a server would drive the
engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.stats import DEFAULT_NODE_BYTES


@dataclass
class BenchResult:
    """One engine × query × document measurement (a Figure 5 cell)."""

    engine: str
    query: str
    document: str
    seconds: float
    watermark: int
    tokens: int
    output_chars: int
    supported: bool = True
    #: characters of XML input (0 when unknown)
    input_bytes: int = 0
    #: chunk size of the push-mode run (0 = one-piece pull mode)
    chunk_size: int = 0

    @property
    def estimated_mb(self) -> float:
        """Watermark converted to MB (see stats.DEFAULT_NODE_BYTES)."""
        return self.watermark * DEFAULT_NODE_BYTES / 1e6

    @property
    def mb_per_s(self) -> float:
        """Input throughput of the best run, in MB/s."""
        if not self.seconds or not self.input_bytes:
            return 0.0
        return self.input_bytes / 1e6 / self.seconds

    def cell(self) -> str:
        """Render like a Figure 5 cell: ``0.18s / 1.2MB``.

        Memory switches to KB below one megabyte so the small GCX
        footprints stay readable at our reduced document scale.
        """
        if not self.supported:
            return "n/a"
        mb = self.estimated_mb
        memory = f"{mb:.2f}MB" if mb >= 1.0 else f"{mb * 1000:.1f}KB"
        return f"{self.seconds:.2f}s / {memory}"

    def as_record(self) -> dict:
        """JSON-ready dict (the BENCH_*.json schema)."""
        return {
            "engine": self.engine,
            "query": self.query,
            "document": self.document,
            "seconds": round(self.seconds, 6),
            "mb_per_s": round(self.mb_per_s, 3),
            "watermark": self.watermark,
            "estimated_mb": round(self.estimated_mb, 4),
            "tokens": self.tokens,
            "input_bytes": self.input_bytes,
            "output_chars": self.output_chars,
            "chunk_size": self.chunk_size,
            "supported": self.supported,
        }


def run_chunked(engine, plan, xml_text: str, chunk_size: int):
    """One push-mode run: feed *xml_text* in *chunk_size* pieces."""
    session = engine.session(plan)
    for start in range(0, len(xml_text), chunk_size):
        session.feed(xml_text[start : start + chunk_size])
    return session.finish()


def run_engine(
    engine,
    query_text: str,
    xml_text: str,
    query_label: str = "",
    doc_label: str = "",
    repeat: int = 1,
    chunk_size: int = 0,
) -> BenchResult:
    """Run *engine* over the workload; keep the best of *repeat* runs.

    The query is compiled exactly once (outside the timed region — the
    plan cache makes repeated compiles free anyway); each repeat
    streams the document through the shared plan.  With *chunk_size*
    the document is pushed through a session in that many-character
    pieces (engines without sessions fall back to a chunk-iterable pull
    run).

    The per-token series recording is left to the engine configuration;
    for timing-sensitive runs construct engines with
    ``record_series=False``.
    """
    plan = engine.compile(query_text)
    best = None
    result = None
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        if chunk_size and hasattr(engine, "session"):
            result = run_chunked(engine, plan, xml_text, chunk_size)
        elif chunk_size:
            result = engine.run(
                plan,
                (
                    xml_text[start : start + chunk_size]
                    for start in range(0, len(xml_text), chunk_size)
                ),
            )
        else:
            result = engine.run(plan, xml_text)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return BenchResult(
        engine=getattr(engine, "name", type(engine).__name__),
        query=query_label,
        document=doc_label,
        seconds=best,
        watermark=result.stats.watermark,
        tokens=result.stats.tokens,
        output_chars=result.stats.output_chars,
        input_bytes=len(xml_text),
        chunk_size=chunk_size,
    )


def buffer_profile(engine, query_text: str, xml_text: str) -> list[int]:
    """The per-token buffered-node series of one run (Figures 3/4)."""
    result = engine.query(query_text, xml_text)
    return result.stats.series


def compare_engines(
    engines,
    query_text: str,
    xml_text: str,
    query_label: str = "",
    doc_label: str = "",
    chunk_size: int = 0,
) -> list[BenchResult]:
    """Run every engine on the same workload (one Figure 5 row).

    Engines that reject the query (e.g. the FluX-like baseline on
    descendant axes) yield an unsupported placeholder — the paper's
    "n/a" cells.
    """
    results = []
    for engine in engines:
        name = getattr(engine, "name", type(engine).__name__)
        try:
            results.append(
                run_engine(
                    engine,
                    query_text,
                    xml_text,
                    query_label,
                    doc_label,
                    chunk_size=chunk_size,
                )
            )
        except ValueError:
            results.append(
                BenchResult(
                    engine=name,
                    query=query_label,
                    document=doc_label,
                    seconds=0.0,
                    watermark=0,
                    tokens=0,
                    output_chars=0,
                    supported=False,
                    input_bytes=len(xml_text),
                    chunk_size=chunk_size,
                )
            )
    return results
