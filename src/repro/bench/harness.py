"""Engine runners and measurement collection for the benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.stats import DEFAULT_NODE_BYTES


@dataclass
class BenchResult:
    """One engine × query × document measurement (a Figure 5 cell)."""

    engine: str
    query: str
    document: str
    seconds: float
    watermark: int
    tokens: int
    output_chars: int
    supported: bool = True

    @property
    def estimated_mb(self) -> float:
        """Watermark converted to MB (see stats.DEFAULT_NODE_BYTES)."""
        return self.watermark * DEFAULT_NODE_BYTES / 1e6

    def cell(self) -> str:
        """Render like a Figure 5 cell: ``0.18s / 1.2MB``.

        Memory switches to KB below one megabyte so the small GCX
        footprints stay readable at our reduced document scale.
        """
        if not self.supported:
            return "n/a"
        mb = self.estimated_mb
        memory = f"{mb:.2f}MB" if mb >= 1.0 else f"{mb * 1000:.1f}KB"
        return f"{self.seconds:.2f}s / {memory}"


def run_engine(
    engine,
    query_text: str,
    xml_text: str,
    query_label: str = "",
    doc_label: str = "",
    repeat: int = 1,
) -> BenchResult:
    """Run *engine* over the workload; keep the best of *repeat* runs.

    The per-token series recording is left to the engine configuration;
    for timing-sensitive runs construct engines with
    ``record_series=False``.
    """
    best = None
    result = None
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        result = engine.query(query_text, xml_text)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return BenchResult(
        engine=getattr(engine, "name", type(engine).__name__),
        query=query_label,
        document=doc_label,
        seconds=best,
        watermark=result.stats.watermark,
        tokens=result.stats.tokens,
        output_chars=result.stats.output_chars,
    )


def buffer_profile(engine, query_text: str, xml_text: str) -> list[int]:
    """The per-token buffered-node series of one run (Figures 3/4)."""
    result = engine.query(query_text, xml_text)
    return result.stats.series


def compare_engines(
    engines, query_text: str, xml_text: str, query_label: str = "", doc_label: str = ""
) -> list[BenchResult]:
    """Run every engine on the same workload (one Figure 5 row).

    Engines that reject the query (e.g. the FluX-like baseline on
    descendant axes) yield an unsupported placeholder — the paper's
    "n/a" cells.
    """
    results = []
    for engine in engines:
        name = getattr(engine, "name", type(engine).__name__)
        try:
            results.append(
                run_engine(engine, query_text, xml_text, query_label, doc_label)
            )
        except ValueError:
            results.append(
                BenchResult(
                    engine=name,
                    query=query_label,
                    document=doc_label,
                    seconds=0.0,
                    watermark=0,
                    tokens=0,
                    output_chars=0,
                    supported=False,
                )
            )
    return results
