"""Shared-stream multiplexing: one lex+project pass for N plans.

See DESIGN.md §13.  :class:`MultiplexPlan` merges the subscribed
plans' path-DFAs into one product DFA (skip a subtree only when it is
dead in *every* plan); :class:`SharedStreamSession` runs the single
driver pass and fans events out to per-plan :class:`StreamSubscriber`
pipelines whose outputs are byte-identical to independent sessions.
"""

from repro.multiplex.plan import MultiplexError, MultiplexPlan
from repro.multiplex.session import SharedStreamSession, StreamSubscriber

__all__ = [
    "MultiplexError",
    "MultiplexPlan",
    "SharedStreamSession",
    "StreamSubscriber",
]
