"""The multiplex plan: N query plans merged behind one product DFA.

One :class:`MultiplexPlan` is the compile-time half of shared-stream
evaluation (DESIGN.md §13): it pins the subscribed
:class:`~repro.core.plan.QueryPlan` objects — each immutable and
shared with any number of single-plan sessions — and merges their
path-DFAs into one :class:`~repro.core.matcher.ProductDFA` whose dead
states encode "no subscribed plan can match at or below this node",
the condition under which the shared pass may fast-forward a whole
subtree at lexer speed for everyone at once.

Like a :class:`QueryPlan`, a multiplex plan carries no per-stream
state: the product memo only ever gains deterministic entries, so one
plan may serve any number of concurrent shared streams over the same
subscriber set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.matcher import ProductDFA
from repro.core.plan import QueryPlan


class MultiplexError(ValueError):
    """A plan set cannot be multiplexed (e.g. a plan without a DFA)."""


@dataclass(frozen=True)
class MultiplexPlan:
    """N immutable query plans plus the product DFA that merges their
    projection paths for the shared pass."""

    plans: tuple[QueryPlan, ...]
    product: ProductDFA

    @classmethod
    def for_plans(cls, plans) -> "MultiplexPlan":
        """Build the product over *plans* (each needs a compiled DFA —
        every engine-compiled plan has one; hand-built plans that
        bypass the compiler do not and cannot ride a shared stream)."""
        plans = tuple(plans)
        for plan in plans:
            if plan.dfa is None:
                raise MultiplexError(
                    "multiplexing needs compiled plans (plan has no DFA)"
                )
        return cls(plans, ProductDFA(plan.dfa for plan in plans))

    @property
    def fanout(self) -> int:
        """Number of subscribed plans."""
        return len(self.plans)

    def stats(self) -> dict:
        """Product-DFA memo occupancy (the STATS frame's multiplex
        section aggregates this over the live shared streams)."""
        return self.product.stats()
