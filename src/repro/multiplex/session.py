"""Shared-stream sessions: one lex+project pass serving N query plans.

The paper's projection argument — one streaming pass discards
everything a query does not need — stops amortizing at one query when
N sessions over the same document each lex and project N times.
:class:`SharedStreamSession` takes it to the limit (DESIGN.md §13):

* a single **driver** thread runs the bytes-domain lexer over the
  pushed document exactly once, walking the subscriber set's
  :class:`~repro.core.matcher.ProductDFA`.  Subtrees dead in *every*
  subscribed plan are fast-forwarded by
  :meth:`~repro.xmlio.lexer_bytes.ByteXmlLexer.skip_subtree` — scanned
  as raw bytes, never event-ified — and enter the fan-out as one
  ``(skip, count)`` record;
* every other event is appended to a shared **batch** (one immutable
  list published to all subscribers — the fan-out cost is one queue
  hand-off per batch per subscriber, not per event);
* each subscriber owns a bounded batch queue, a replay "lexer"
  (:class:`_EventReplay`) that serves the broadcast events through the
  ``next_event()`` / ``skip_subtree()`` surface the compiled
  projectors already consume, and an unmodified per-plan pipeline —
  DFA/codegen projector, VM/codegen evaluator, buffer, stats, output
  channel — running on its own worker thread.

Because a subscriber's projector sees the same significant-event
sequence its own lexer would have produced — driver-level skips
replay as the same bulk counts, per-plan skips count the broadcast
events one by one — every subscriber's output, watermark series and
role statistics are **byte-identical** to an independent single-plan
:class:`~repro.core.session.StreamSession` over the same document, at
every chunking (the differential suite in ``tests/test_multiplex.py``
enforces this).

Backpressure composes end to end: a slow subscriber's bounded batch
queue blocks the driver, the driver stops pulling from the lexer, the
input chunk channel fills, and ``feed()`` blocks the producer — one
slow consumer throttles the shared stream rather than growing
unbounded buffers (the server caps the damage with its bounded
per-subscriber output channels, which pause only the slow plan's
evaluator, not the driver, until that subscriber's RESULT pump
catches up).

Typical use::

    engine = GCXEngine()
    shared = engine.shared_session()
    subs = [shared.subscribe(engine.compile(q)) for q in queries]
    for chunk in chunks:                    # one ingest stream
        shared.feed(chunk)
    shared.finish()                         # end of input
    results = [sub.finish() for sub in subs]  # N independent RunResults
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from repro.core.buffer import Buffer
from repro.core.codegen import CodegenEvaluator, GeneratedStreamProjector
from repro.core.evaluator import PullEvaluator
from repro.core.plan import QueryPlan
from repro.core.program import CompiledEvaluator
from repro.core.projector import CompiledStreamProjector
from repro.core.session import (
    DEFAULT_MAX_PENDING_CHUNKS,
    SessionStateError,
    _ChunkChannel,
    _OutputChannel,
)
from repro.core.stats import BufferStats
from repro.multiplex.plan import MultiplexPlan
from repro.xmlio.lexer_bytes import ByteXmlLexer
from repro.xmlio.writer import XmlWriter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import RunResult

#: Events per broadcast batch: large enough that the per-batch queue
#: hand-off (one lock round per subscriber) is noise, small enough
#: that subscribers start work while the driver is still scanning.
DEFAULT_BATCH_EVENTS = 256

#: Upper bound on batches queued per subscriber ahead of its worker.
#: A small bound gives backpressure: the driver cannot race megabytes
#: of events ahead of the slowest subscriber.
DEFAULT_MAX_PENDING_BATCHES = 8

#: Broadcast record kinds beyond the lexer's EVENT_START/END/TEXT
#: (0/1/2): a subtree skipped for every plan, and a driver failure.
_REC_SKIP = 3
_REC_ERROR = 4


class _EventReplay:
    """Lexer facade over the driver's broadcast batches.

    Exposes exactly the surface the compiled projectors bind —
    ``next_event()`` and ``skip_subtree()`` — so the per-subscriber
    pipeline is the stock single-plan machinery, fed from the fan-out
    queue instead of a private lexer.

    ``skip_subtree`` replays a subtree this plan is dead for: events
    other plans needed are counted one by one (exactly what the
    interpreting oracle records token-wise), and nested driver-level
    skip records contribute their bulk counts — the sum equals what
    this subscriber's own lexer would have returned, so the stats
    series stays byte-identical.
    """

    __slots__ = ("_get", "_batch", "_index")

    def __init__(self, get):
        self._get = get
        self._batch: list = []
        self._index = 0

    def _refill(self) -> bool:
        """Pull the next batch; False at end of stream."""
        batch = self._get()
        if batch is None:
            return False
        self._batch = batch
        self._index = 0
        return True

    def next_event(self):
        index = self._index
        batch = self._batch
        if index >= len(batch):
            if not self._refill():
                return None
            batch = self._batch
            index = 0
        item = batch[index]
        self._index = index + 1
        if item[0] >= _REC_SKIP:
            if item[0] == _REC_ERROR:
                raise item[1]
            raise AssertionError(  # pragma: no cover - protocol invariant
                "skip record outside skip_subtree (driver dead implies "
                "every subscriber dead)"
            )
        return item

    def skip_subtree(self) -> int:
        depth = 1
        count = 0
        while True:
            batch = self._batch
            size = len(batch)
            index = self._index
            if index >= size:
                if not self._refill():
                    raise RuntimeError(  # pragma: no cover - driver errors first
                        "event stream ended inside a skipped subtree"
                    )
                continue
            while index < size:
                item = batch[index]
                index += 1
                kind = item[0]
                if kind == 0:
                    depth += 1
                    count += 1
                elif kind == 1:
                    depth -= 1
                    count += 1
                    if not depth:
                        self._index = index
                        return count
                elif kind == 2:
                    count += 1
                elif kind == _REC_SKIP:
                    # The subtree of the START just counted was consumed
                    # at lexer speed for everyone, end tag included.
                    depth -= 1
                    count += item[1]
                    if not depth:
                        self._index = index
                        return count
                else:
                    self._index = index
                    raise item[1]
            self._index = index


class StreamSubscriber:
    """One plan riding a shared stream: the consumer-side half of a
    :class:`~repro.core.session.StreamSession` (everything but
    ``feed()``, which belongs to the shared ingest).

    Construct via :meth:`SharedStreamSession.subscribe`.  Results
    stream through the same bounded output-channel contract as a
    single-plan session — ``drain_output()`` / ``next_output()`` /
    ``on_output`` / ``output_stream`` / ``binary_output`` — and
    ``finish()`` (call it once the publisher finished the input)
    returns the familiar :class:`~repro.core.engine.RunResult`,
    byte-identical to an independent run of the same plan.
    """

    def __init__(
        self,
        plan: QueryPlan,
        *,
        gc_enabled: bool = True,
        record_series: bool = True,
        drain: bool = True,
        compiled_eval: bool = True,
        codegen: bool = True,
        output_stream=None,
        on_output=None,
        max_pending_output: int | None = None,
        max_pending_batches: int = DEFAULT_MAX_PENDING_BATCHES,
        binary_output: bool = False,
    ):
        if plan.dfa is None:
            raise SessionStateError(
                "shared streams need compiled plans (plan has no DFA)"
            )
        self.plan = plan
        self._drain = drain
        self._binary_output = binary_output
        self._queue = _ChunkChannel(max_pending_batches)
        self._replay = _EventReplay(self._queue.get)
        self._output = _OutputChannel(
            limit=max_pending_output,
            callback=on_output,
            passthrough=output_stream,
            binary=binary_output,
        )
        self._stats = BufferStats(record_series=record_series)
        self._buffer = Buffer(self._stats)
        # The per-plan pipeline is the stock single-plan machinery —
        # only the lexer seat is taken by the replay facade.
        kernels = plan.kernels if codegen else None
        if kernels is not None and kernels.projector is not None:
            self._projector = GeneratedStreamProjector(
                kernels.projector, self._replay, plan.dfa,
                self._buffer, self._stats,
            )
        else:
            self._projector = CompiledStreamProjector(
                self._replay, plan.dfa, self._buffer, self._stats
            )
        self._writer = XmlWriter(stream=self._output)
        if compiled_eval and plan.program is not None:
            if kernels is not None and kernels.evaluator is not None:
                self._evaluator = CodegenEvaluator(
                    kernels.evaluator, plan.program, self._projector,
                    self._buffer, self._writer, gc_enabled,
                )
            else:
                self._evaluator = CompiledEvaluator(
                    plan.program, self._projector, self._buffer,
                    self._writer, gc_enabled,
                )
        else:
            self._evaluator = PullEvaluator(
                plan.rewritten, self._projector, self._buffer,
                self._writer, gc_enabled,
            )
        self._error: BaseException | None = None
        self._result = None
        self._started = time.perf_counter()
        self._worker = threading.Thread(
            target=self._run, name="gcx-mux-subscriber", daemon=True
        )
        self._worker.start()

    # -- worker side ---------------------------------------------------

    def _run(self) -> None:
        try:
            self._evaluator.run()
            if self._drain:
                self._projector.run_to_end()
        except BaseException as exc:  # noqa: BLE001 - reraised at finish()
            self._error = exc
        finally:
            # Release the driver (late broadcasts are irrelevant now)
            # and wake any consumer blocked on the output channel.
            self._queue.abandon()
            self._output.close()

    # -- consumer side -------------------------------------------------

    def drain_output(self):
        """Serialized output produced since the last drain (see
        :meth:`StreamSession.drain_output`)."""
        return self._output.drain()

    def next_output(
        self, max_chars: int | None = None, timeout: float | None = None
    ):
        """Block for the next output fragment (see
        :meth:`StreamSession.next_output`)."""
        return self._output.next(max_chars, timeout)

    def finish(self) -> "RunResult":
        """Collect this subscriber's :class:`RunResult` (idempotent).

        Call after the shared input ended (``SharedStreamSession.
        finish``): joins the worker, re-raises any pipeline failure —
        malformed XML broadcast by the driver, or this plan's own
        evaluation error — and returns the result with exactly the
        stats an independent session would report.
        """
        if self._result is not None:
            return self._result
        self._worker.join()
        if self._error is not None:
            raise self._error
        from repro.core.engine import RunResult  # circular at import time

        stats = self._stats
        stats.elapsed = time.perf_counter() - self._started
        stats.final_buffered = self._buffer.live_count
        self._buffer.clear()
        output = self._output.drain()
        if self._binary_output:
            output = output.decode("utf-8")
        stats.output_chars = self._writer.chars_written
        self._result = RunResult(output, stats, self.plan)
        return self._result

    def abort(self) -> None:
        """Drop out of the shared stream without collecting a result."""
        self._queue.abandon()
        self._output.abandon()
        self._worker.join()
        self._output.close()

    def fail(self, exc: BaseException) -> None:
        """Abort and make :meth:`finish` re-raise *exc* — the stream
        broke off before end of input (publisher gone, stream torn
        down), so a silently truncated "result" must not look like a
        completed run."""
        if self._result is None and self._error is None:
            self._error = exc
        self.abort()

    @property
    def finished(self) -> bool:
        return self._result is not None

    @property
    def failed(self) -> bool:
        """True when the pipeline failed; :meth:`finish` will re-raise."""
        return self._error is not None

    @property
    def time_to_first_output(self) -> float | None:
        """Seconds from subscription to the first output fragment."""
        first = self._output.first_output_at
        return None if first is None else first - self._started


class SharedStreamSession:
    """One pushed document multiplexed to N subscribed plans.

    Lifecycle: construct, :meth:`subscribe` each plan, then
    :meth:`feed` chunks — the first chunk (or :meth:`finish`) *seals*
    the subscriber set, builds the :class:`MultiplexPlan` product and
    starts the driver; subscribing after that raises.  ``finish()``
    closes the input and joins the driver; each subscriber's result is
    then collected independently via ``StreamSubscriber.finish()``.

    Input failures (malformed XML, truncation) raise from
    ``feed()``/``finish()`` *and* are broadcast, so every subscriber's
    ``finish()`` re-raises the same failure — exactly what independent
    sessions over the same bytes would do.
    """

    def __init__(
        self,
        *,
        gc_enabled: bool = True,
        record_series: bool = True,
        drain: bool = True,
        compiled_eval: bool = True,
        codegen: bool = True,
        max_pending_chunks: int = DEFAULT_MAX_PENDING_CHUNKS,
        max_pending_batches: int = DEFAULT_MAX_PENDING_BATCHES,
        batch_events: int = DEFAULT_BATCH_EVENTS,
    ):
        self._subscriber_defaults = {
            "gc_enabled": gc_enabled,
            "record_series": record_series,
            "drain": drain,
            "compiled_eval": compiled_eval,
            "codegen": codegen,
            "max_pending_batches": max_pending_batches,
        }
        self._batch_events = max(1, batch_events)
        self._channel = _ChunkChannel(max_pending_chunks)
        self._lexer = ByteXmlLexer(refill=self._channel.get)
        # subscribe() and the sealing feed() may race from different
        # threads (the server admits subscribers while a publisher
        # connection starts feeding); the lock makes sealing atomic.
        self._seal_lock = threading.Lock()
        self._subscribers: list[StreamSubscriber] = []
        self._plan: MultiplexPlan | None = None
        self._driver: threading.Thread | None = None
        self._error: BaseException | None = None
        self._summary: dict | None = None
        self._bytes_fed = 0
        self._started = time.perf_counter()

    # ------------------------------------------------------------------
    # assembling the subscriber set
    # ------------------------------------------------------------------

    def subscribe(
        self,
        plan: QueryPlan,
        output_stream=None,
        on_output=None,
        max_pending_output: int | None = None,
        binary_output: bool = False,
    ) -> StreamSubscriber:
        """Add *plan* to the stream; allowed until the first ``feed``.

        The same plan may be subscribed several times (each rider gets
        its own buffer, stats and output channel).
        """
        with self._seal_lock:
            if self._plan is not None:
                raise SessionStateError(
                    "stream already sealed: subscribe before the first feed()"
                )
            subscriber = StreamSubscriber(
                plan,
                output_stream=output_stream,
                on_output=on_output,
                max_pending_output=max_pending_output,
                binary_output=binary_output,
                **self._subscriber_defaults,
            )
            self._subscribers.append(subscriber)
        return subscriber

    @property
    def subscribers(self) -> tuple[StreamSubscriber, ...]:
        return tuple(self._subscribers)

    @property
    def sealed(self) -> bool:
        """True once the subscriber set is frozen and the driver runs."""
        return self._plan is not None

    @property
    def multiplex_plan(self) -> MultiplexPlan | None:
        """The merged plan (``None`` until the stream is sealed)."""
        return self._plan

    @property
    def bytes_fed(self) -> int:
        """Total input bytes accepted so far — counted **once**, no
        matter how many plans ride the stream."""
        return self._bytes_fed

    def _seal(self) -> None:
        self._plan = MultiplexPlan.for_plans(
            subscriber.plan for subscriber in self._subscribers
        )
        self._driver = threading.Thread(
            target=self._drive, name="gcx-mux-driver", daemon=True
        )
        self._driver.start()

    # ------------------------------------------------------------------
    # the driver (one lex+project pass for everyone)
    # ------------------------------------------------------------------

    def _drive(self) -> None:
        lexer = self._lexer
        product = self._plan.product
        element_memo = product._element_memo
        text_memo = product._text_memo
        compute_element = product.compute_element
        compute_text = product.text
        next_event = lexer.next_event
        skip_subtree = lexer.skip_subtree
        queues = [subscriber._queue for subscriber in self._subscribers]
        stack = [product.start]
        push = stack.append
        pop = stack.pop
        limit = self._batch_events
        batch: list = []
        append = batch.append
        try:
            while True:
                event = next_event()
                if event is None:
                    break
                kind = event[0]
                if kind == 0:  # EVENT_START
                    state = stack[-1]
                    entry = element_memo[state].get(event[1])
                    if entry is None:
                        entry = compute_element(state, event[1])
                    child, parent, dead = entry
                    if parent != state:
                        stack[-1] = parent
                    append(event)
                    if dead:
                        # Dead in every subscribed plan: consume the
                        # subtree as raw bytes, broadcast only the count.
                        append((_REC_SKIP, skip_subtree()))
                    else:
                        push(child)
                elif kind == 1:  # EVENT_END
                    pop()
                    append(event)
                else:  # EVENT_TEXT
                    state = stack[-1]
                    parent = text_memo[state]
                    if parent is None:
                        parent = compute_text(state)
                    if parent != state:
                        stack[-1] = parent
                    append(event)
                if len(batch) >= limit:
                    for queue in queues:
                        queue.put(batch)
                    batch = []
                    append = batch.append
        except BaseException as exc:  # noqa: BLE001 - broadcast + reraised
            self._error = exc
            append((_REC_ERROR, exc))
        finally:
            if batch:
                for queue in queues:
                    queue.put(batch)
            for queue in queues:
                queue.close()
            # Unblock any producer; late input is irrelevant now.
            self._channel.abandon()

    # ------------------------------------------------------------------
    # caller side (the shared push interface)
    # ------------------------------------------------------------------

    def feed(self, chunk: bytes | str) -> "SharedStreamSession":
        """Hand the next input chunk to the shared stream.

        The first call seals the subscriber set and starts the driver.
        ``bytes`` are the native path; ``str`` is UTF-8-encoded once.
        Blocks when the slowest subscriber is more than a few batches
        behind (backpressure).
        """
        if self._summary is not None:
            raise SessionStateError("stream already finished")
        if self._plan is None:
            with self._seal_lock:
                if self._plan is None:
                    self._seal()
        self._raise_pending()
        if chunk:
            if isinstance(chunk, str):
                chunk = chunk.encode("utf-8")
            else:
                chunk = bytes(chunk)
            self._bytes_fed += len(chunk)
            self._channel.put(chunk)
            self._raise_pending()
        return self

    def finish(self) -> dict:
        """Signal end of input; returns an ingest summary (idempotent).

        Joins the driver — every event has been broadcast when this
        returns — and re-raises any input-side failure (which each
        subscriber's ``finish()`` will also re-raise, matching the
        independent-session contract).  Per-plan results are collected
        from the subscribers, not here.
        """
        if self._summary is not None:
            return self._summary
        if self._plan is None:
            with self._seal_lock:
                if self._plan is None:
                    self._seal()
        self._channel.close()
        self._driver.join()
        self._raise_pending()
        self._summary = {
            "subscribers": len(self._subscribers),
            "bytes_in": self._bytes_fed,
            "elapsed_s": round(time.perf_counter() - self._started, 6),
            "product_dfa": self._plan.stats(),
        }
        return self._summary

    def abort(self) -> None:
        """Tear the stream down: driver, then every subscriber.

        Aborting a stream that did not finish cleanly is a *failure*
        for everyone still riding it: their ``finish()`` raises
        instead of presenting a truncated document as a completed run.
        """
        if self._summary is None and self._error is None:
            self._error = SessionStateError(
                "shared stream aborted before end of input"
            )
        exc = self._error
        # Poison every unfinished subscriber BEFORE waking its worker:
        # an abandoned queue reads as end-of-stream, and a worker that
        # runs off the end of truncated input must find the error
        # already in place — not complete first and hand a consumer an
        # empty "result" in the window before fail() lands.
        if exc is not None:
            for subscriber in self._subscribers:
                if subscriber._result is None and subscriber._error is None:
                    subscriber._error = exc
        self._channel.abandon()
        self._channel.close()
        # Release the driver first — it may be blocked broadcasting
        # into a full subscriber queue.
        for subscriber in self._subscribers:
            subscriber._queue.abandon()
        if self._driver is not None:
            self._driver.join()
        for subscriber in self._subscribers:
            subscriber.abort()

    def _raise_pending(self) -> None:
        if self._error is not None:
            # Sticky, like StreamSession: every later feed()/finish()
            # re-raises the same failure with the driver gone.
            self._channel.close()
            if self._driver is not None:
                self._driver.join()
            raise self._error
